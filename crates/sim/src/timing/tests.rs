//! Unit tests for the timing module: the original `timing.rs` suite
//! (now exercising the staged default engine through the public API)
//! plus engine dispatch, config validation, deadlock snapshots, and the
//! bank-arbitrated MRF policy.

use super::*;
use crate::exec::{execute, execute_with, ExecMode, Launch};
use crate::mem::GlobalMemory;

fn capture(text: &str, ctas: usize, tpc: usize, mem_words: usize) -> TraceCapture {
    let kernel = rfh_isa::parse_kernel(text).unwrap();
    let machine = MachineConfig::paper();
    let mut cap = TraceCapture::new(machine.clone(), tpc);
    let mut mem = GlobalMemory::new(mem_words);
    execute_with(
        &kernel,
        &Launch::new(ctas, tpc),
        &mut mem,
        ExecMode::Baseline,
        &machine,
        &mut [&mut cap],
    )
    .unwrap();
    cap
}

const ALU_HEAVY: &str = "
.kernel alu
BB0:
  mov r0, %tid.x
  mov r1, 0
  mov r2, 0
BB1:
  iadd r1 r1, 1
  imad r2 r1, r1, r2
  iadd r2 r2, 3
  xor r2 r2, r1
  setp.lt p0 r1, 64
  @p0 bra BB1
BB2:
  st.global r0, r2
  exit
";

const MEM_HEAVY: &str = "
.kernel memh
BB0:
  mov r0, %tid.x
  mov r3, 0
  mov r4, 0
BB1:
  iadd r1 r0, r3
  ld.global r2 r1
  iadd r4 r4, r2
  iadd r3 r3, 32
  setp.lt p0 r3, 512
  @p0 bra BB1
BB2:
  st.global r0, r4
  exit
";

#[test]
fn single_warp_alu_ipc_is_latency_bound() {
    let cap = capture(ALU_HEAVY, 1, 32, 64);
    let r = simulate_timing(
        &cap.traces,
        &|w| cap.cta_of(w),
        &TimingConfig::single_level(),
    )
    .unwrap();
    // One warp with serial dependences cannot reach IPC 1.
    assert!(r.ipc() < 0.7, "ipc = {}", r.ipc());
}

#[test]
fn many_warps_hide_alu_latency() {
    let cap = capture(ALU_HEAVY, 8, 128, 2048);
    assert_eq!(cap.traces.len(), 32);
    let r = simulate_timing(
        &cap.traces,
        &|w| cap.cta_of(w),
        &TimingConfig::single_level(),
    )
    .unwrap();
    assert!(
        r.ipc() > 0.9,
        "32 warps should saturate issue, ipc = {}",
        r.ipc()
    );
}

#[test]
fn two_level_with_8_matches_single_level() {
    // The paper's claim: no performance penalty with 8 active warps.
    for text in [ALU_HEAVY, MEM_HEAVY] {
        let cap = capture(text, 8, 128, 4096);
        let base = simulate_timing(
            &cap.traces,
            &|w| cap.cta_of(w),
            &TimingConfig::single_level(),
        )
        .unwrap();
        let two =
            simulate_timing(&cap.traces, &|w| cap.cta_of(w), &TimingConfig::two_level(8)).unwrap();
        let slowdown = two.cycles as f64 / base.cycles as f64;
        assert!(slowdown < 1.05, "two-level slowdown {slowdown} on {text}");
    }
}

#[test]
fn too_few_active_warps_hurt_memory_workloads() {
    let cap = capture(MEM_HEAVY, 8, 128, 4096);
    let base = simulate_timing(
        &cap.traces,
        &|w| cap.cta_of(w),
        &TimingConfig::single_level(),
    )
    .unwrap();
    let tiny =
        simulate_timing(&cap.traces, &|w| cap.cta_of(w), &TimingConfig::two_level(1)).unwrap();
    assert!(
        tiny.cycles as f64 > base.cycles as f64 * 1.3,
        "1 active warp cannot hide latency: {} vs {}",
        tiny.cycles,
        base.cycles
    );
}

#[test]
fn descheduling_happens_on_long_latency() {
    let cap = capture(MEM_HEAVY, 8, 128, 4096);
    let two =
        simulate_timing(&cap.traces, &|w| cap.cta_of(w), &TimingConfig::two_level(8)).unwrap();
    assert!(two.deschedules > 0);
}

#[test]
fn barriers_synchronize_ctas() {
    let text = "
.kernel b
BB0:
  mov r0, %tid.x
  st.shared r0, r0
  bar
  iadd r1 r0, 1
  ld.shared r2 r1
  st.global r0, r2
  exit
";
    // 2 CTAs of 64 threads: barriers must not deadlock across CTAs.
    let cap = capture(text, 2, 64, 256);
    let r = simulate_timing(&cap.traces, &|w| cap.cta_of(w), &TimingConfig::two_level(2)).unwrap();
    assert!(r.cycles > 0);
    assert_eq!(
        r.instructions,
        cap.traces.iter().map(|t| t.len() as u64).sum::<u64>()
    );
}

fn alu_op(dst: u16, src: u16) -> TraceOp {
    TraceOp {
        latency: 8,
        unit: Unit::Alu,
        long: false,
        barrier: false,
        dsts: [Some(dst), None],
        srcs: [Some(src), None, None],
    }
}

fn bar_op() -> TraceOp {
    TraceOp {
        latency: 1,
        unit: Unit::Alu,
        long: false,
        barrier: true,
        dsts: [None, None],
        srcs: [None, None, None],
    }
}

#[test]
fn barrier_mismatch_is_a_deadlock_error_not_a_hang() {
    // Warp 0 waits at a mid-trace barrier that warp 1 (same CTA)
    // never reaches — warp 1 retires without arriving, so warp 0 can
    // never be released.
    let traces = vec![vec![bar_op(), alu_op(0, 0)], vec![alu_op(1, 1)]];
    let err = simulate_timing(&traces, &|_| 0, &TimingConfig::two_level(8)).unwrap_err();
    assert!(matches!(err, TimingError::Deadlock { .. }), "{err}");
}

#[test]
fn mismatched_barrier_counts_are_a_deadlock_error() {
    // Warp 1 executes two barriers but warp 0 only one: warp 1's second
    // arrival can never be matched once warp 0 retires.
    let traces = vec![
        vec![bar_op(), alu_op(0, 0), alu_op(0, 0)],
        vec![bar_op(), bar_op(), alu_op(1, 1)],
    ];
    let err = simulate_timing(&traces, &|_| 0, &TimingConfig::two_level(8)).unwrap_err();
    assert!(matches!(err, TimingError::Deadlock { .. }), "{err}");
}

#[test]
fn deadlock_error_carries_a_per_warp_snapshot() {
    // Same barrier mismatch as above: warp 0 is stuck at its barrier
    // (pc 1: the barrier issued), warp 1 retired and must not appear.
    let traces = vec![vec![bar_op(), alu_op(0, 0)], vec![alu_op(1, 1)]];
    for engine in [Engine::Staged, Engine::Reference] {
        let err = simulate_timing_with_engine(&traces, &|_| 0, &TimingConfig::two_level(8), engine)
            .unwrap_err();
        let TimingError::Deadlock { snapshot, .. } = &err else {
            panic!("expected deadlock, got {err}");
        };
        assert_eq!(snapshot.warps.len(), 1, "{engine:?}");
        let w = snapshot.warps[0];
        assert_eq!(w.warp, 0);
        assert_eq!(w.cta, 0);
        assert_eq!(w.pc, 1);
        assert!(w.at_barrier);
        assert!(!w.descheduled);
        assert_eq!(w.pending_latency, 0);
        // The message alone must identify the stuck warp.
        let msg = err.to_string();
        assert!(msg.contains("1 unretired warp(s)"), "{msg}");
        assert!(msg.contains("w0 cta0 pc1 at-barrier"), "{msg}");
    }
}

#[test]
fn deadlock_snapshots_are_identical_across_engines() {
    let traces = vec![
        vec![bar_op(), alu_op(0, 0), alu_op(0, 0)],
        vec![bar_op(), bar_op(), alu_op(1, 1)],
    ];
    let staged =
        simulate_timing_with_engine(&traces, &|_| 0, &TimingConfig::two_level(8), Engine::Staged)
            .unwrap_err();
    let reference = simulate_timing_with_engine(
        &traces,
        &|_| 0,
        &TimingConfig::two_level(8),
        Engine::Reference,
    )
    .unwrap_err();
    assert_eq!(staged, reference);
}

#[test]
fn cycle_budget_bounds_the_simulation() {
    // A 100-op dependent chain at 8 cycles/op needs ~800 cycles; a
    // 50-cycle budget must trip first.
    let chain: Vec<TraceOp> = (0..100).map(|_| alu_op(0, 0)).collect();
    let cfg = TimingConfig::single_level().with_max_cycles(50);
    let err = simulate_timing(std::slice::from_ref(&chain), &|_| 0, &cfg).unwrap_err();
    assert_eq!(err, TimingError::CycleBudget { limit: 50 });
    // With the default budget the same trace completes.
    let ok = simulate_timing(&[chain], &|_| 0, &TimingConfig::single_level()).unwrap();
    assert!(ok.cycles > 50);
}

#[test]
fn cycle_budget_default_is_pinned() {
    // Regression pin: changing the default budget changes which
    // workloads are reported as runaway; do it deliberately.
    assert_eq!(DEFAULT_MAX_CYCLES, 1_000_000_000);
    assert_eq!(TimingConfig::two_level(8).max_cycles, DEFAULT_MAX_CYCLES);
    assert_eq!(TimingConfig::single_level().max_cycles, DEFAULT_MAX_CYCLES);
}

#[test]
fn empty_traces_complete_immediately() {
    let traces: Vec<Vec<TraceOp>> = vec![Vec::new(), Vec::new()];
    let r = simulate_timing(&traces, &|_| 0, &TimingConfig::two_level(2)).unwrap();
    assert_eq!(r.instructions, 0);
}

#[test]
fn instruction_counts_are_conserved() {
    let cap = capture(ALU_HEAVY, 2, 64, 128);
    let total: u64 = cap.traces.iter().map(|t| t.len() as u64).sum();
    for cfg in [TimingConfig::single_level(), TimingConfig::two_level(4)] {
        let r = simulate_timing(&cap.traces, &|w| cap.cta_of(w), &cfg).unwrap();
        assert_eq!(r.instructions, total);
    }
}

#[test]
fn engines_agree_on_captured_workloads() {
    // The unit-level spot check; tests/timing_differential.rs is the
    // exhaustive version over all workloads and generated traces.
    for text in [ALU_HEAVY, MEM_HEAVY] {
        let cap = capture(text, 4, 128, 4096);
        for cfg in [
            TimingConfig::single_level(),
            TimingConfig::two_level(8),
            TimingConfig::two_level(2).with_policy(SchedPolicy::Greedy),
        ] {
            let staged =
                simulate_timing_with_engine(&cap.traces, &|w| cap.cta_of(w), &cfg, Engine::Staged);
            let reference = simulate_timing_with_engine(
                &cap.traces,
                &|w| cap.cta_of(w),
                &cfg,
                Engine::Reference,
            );
            assert_eq!(staged, reference, "{cfg:?}");
        }
    }
}

#[test]
fn engine_names_round_trip() {
    assert_eq!(Engine::from_name("staged"), Some(Engine::Staged));
    assert_eq!(Engine::from_name("reference"), Some(Engine::Reference));
    assert_eq!(Engine::from_name("fast"), None);
    assert_eq!(Engine::default(), Engine::Staged);
    for e in [Engine::Staged, Engine::Reference] {
        assert_eq!(Engine::from_name(e.name()), Some(e));
    }
}

#[test]
fn zero_active_warps_is_a_config_error() {
    let traces = vec![vec![alu_op(0, 0)]];
    for engine in [Engine::Staged, Engine::Reference] {
        let err = simulate_timing_with_engine(&traces, &|_| 0, &TimingConfig::two_level(0), engine)
            .unwrap_err();
        assert_eq!(err, TimingError::Config(ConfigError::ZeroActiveWarps));
    }
}

#[test]
fn oversized_active_set_is_a_config_error() {
    let traces = vec![vec![alu_op(0, 0)]];
    let err = simulate_timing(&traces, &|_| 0, &TimingConfig::two_level(33)).unwrap_err();
    assert_eq!(
        err,
        TimingError::Config(ConfigError::ActiveExceedsResident {
            active: 33,
            resident: 32,
        })
    );
    // The full resident complement is fine; so is single-level, whose
    // sentinel active_warps is not consulted.
    assert!(simulate_timing(&traces, &|_| 0, &TimingConfig::two_level(32)).is_ok());
    assert!(simulate_timing(&traces, &|_| 0, &TimingConfig::single_level()).is_ok());
}

#[test]
fn zero_latency_classes_are_config_errors() {
    let traces = vec![vec![alu_op(0, 0)]];
    type Breaker<'a> = &'a dyn Fn(&mut MachineConfig);
    let cases: [(Breaker, LatencyClass); 5] = [
        (&|m| m.alu_latency = 0, LatencyClass::Alu),
        (&|m| m.sfu_latency = 0, LatencyClass::Sfu),
        (&|m| m.shared_mem_latency = 0, LatencyClass::SharedMem),
        (&|m| m.tex_latency = 0, LatencyClass::Tex),
        (&|m| m.dram_latency = 0, LatencyClass::Dram),
    ];
    for (break_machine, class) in cases {
        let mut cfg = TimingConfig::two_level(8);
        break_machine(&mut cfg.machine);
        let err = simulate_timing(&traces, &|_| 0, &cfg).unwrap_err();
        assert_eq!(err, TimingError::Config(ConfigError::ZeroLatency { class }));
    }
}

#[test]
fn degenerate_bank_geometry_is_a_config_error() {
    let traces = vec![vec![alu_op(0, 0)]];
    for (banks, depth) in [(0, 4), (8, 0), (0, 0)] {
        let cfg =
            TimingConfig::two_level(8).with_bank_policy(BankPolicy::Arbitrated { banks, depth });
        let err = simulate_timing(&traces, &|_| 0, &cfg).unwrap_err();
        assert_eq!(
            err,
            TimingError::Config(ConfigError::BankGeometry { banks, depth })
        );
    }
}

#[test]
fn reference_engine_rejects_bank_arbitration() {
    let traces = vec![vec![alu_op(0, 0)]];
    let cfg =
        TimingConfig::two_level(8).with_bank_policy(BankPolicy::Arbitrated { banks: 8, depth: 4 });
    let err = simulate_timing_with_engine(&traces, &|_| 0, &cfg, Engine::Reference).unwrap_err();
    assert_eq!(err, TimingError::Config(ConfigError::BankPolicyUnsupported));
    // The staged engine accepts the same config.
    assert!(simulate_timing(&traces, &|_| 0, &cfg).is_ok());
}

/// An op whose three sources all land in MRF bank 0 of a 4-bank MRF.
fn conflicted_op(dst: u16) -> TraceOp {
    TraceOp {
        latency: 8,
        unit: Unit::Alu,
        long: false,
        barrier: false,
        dsts: [Some(dst), None],
        srcs: [Some(0), Some(4), Some(8)],
    }
}

#[test]
fn bank_conflicts_slow_dependent_chains() {
    // A dependent chain of ops that each read bank 0 three times: read
    // serialization adds 2 cycles of result latency per op.
    let chain: Vec<TraceOp> = (0..50).map(|_| conflicted_op(0)).collect();
    let ideal = simulate_timing(
        std::slice::from_ref(&chain),
        &|_| 0,
        &TimingConfig::single_level(),
    )
    .unwrap();
    let banked = simulate_timing(
        &[chain],
        &|_| 0,
        &TimingConfig::single_level()
            .with_bank_policy(BankPolicy::Arbitrated { banks: 4, depth: 4 }),
    )
    .unwrap();
    assert_eq!(ideal.instructions, banked.instructions);
    assert!(
        banked.cycles > ideal.cycles,
        "banked {} vs ideal {}",
        banked.cycles,
        ideal.cycles
    );
}

#[test]
fn conflict_free_reads_match_the_ideal_mrf() {
    // Each op reads one register per distinct bank: no serialization,
    // so the arbitrated MRF costs nothing.
    let op = TraceOp {
        latency: 8,
        unit: Unit::Alu,
        long: false,
        barrier: false,
        dsts: [Some(0), None],
        srcs: [Some(0), Some(1), Some(2)],
    };
    let chain: Vec<TraceOp> = (0..50).map(|_| op).collect();
    let ideal = simulate_timing(
        std::slice::from_ref(&chain),
        &|_| 0,
        &TimingConfig::single_level(),
    )
    .unwrap();
    let banked = simulate_timing(
        &[chain],
        &|_| 0,
        &TimingConfig::single_level()
            .with_bank_policy(BankPolicy::Arbitrated { banks: 4, depth: 4 }),
    )
    .unwrap();
    assert_eq!(ideal, banked);
}

mod policy_tests {
    use super::*;

    #[test]
    fn greedy_policy_is_never_faster_on_balanced_work() {
        let kernel = rfh_isa::parse_kernel(
            "
.kernel bal
BB0:
  mov r0, %tid.x
  mov r1, 0
  mov r2, 0
BB1:
  iadd r1 r1, 1
  imad r2 r1, r1, r2
  setp.lt p0 r1, 32
  @p0 bra BB1
BB2:
  st.global r0, r2
  exit
",
        )
        .unwrap();
        let machine = MachineConfig::paper();
        let mut cap = TraceCapture::new(machine, 128);
        let mut mem = GlobalMemory::new(1024);
        execute(
            &kernel,
            &Launch::new(4, 128),
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut cap],
        )
        .unwrap();
        let rr =
            simulate_timing(&cap.traces, &|w| cap.cta_of(w), &TimingConfig::two_level(8)).unwrap();
        let greedy = simulate_timing(
            &cap.traces,
            &|w| cap.cta_of(w),
            &TimingConfig::two_level(8).with_policy(SchedPolicy::Greedy),
        )
        .unwrap();
        assert_eq!(rr.instructions, greedy.instructions);
        assert!(
            greedy.cycles as f64 >= rr.cycles as f64 * 0.95,
            "greedy {} vs round-robin {}",
            greedy.cycles,
            rr.cycles
        );
    }
}
