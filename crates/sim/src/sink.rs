//! The instruction-trace observer interface.
//!
//! The functional executor emits one event per executed warp instruction;
//! counting models ([`crate::counts`], [`crate::rfc`], [`crate::usage`])
//! implement [`TraceSink`] and accumulate whatever they need. This mirrors
//! the paper's methodology of a custom Ocelot trace analysis tool recording
//! hierarchy accesses over full program executions (§5.1).

use rfh_isa::access::AccessPlan;
use rfh_isa::{InstrRef, Instruction};

/// One executed warp instruction.
#[derive(Debug, Clone, Copy)]
pub struct InstrEvent<'a> {
    /// The issuing warp's global index.
    pub warp: usize,
    /// The instruction's position in the kernel.
    pub at: InstrRef,
    /// The instruction itself (with placement and liveness annotations).
    pub instr: &'a Instruction,
    /// Threads active in the warp when the instruction issued.
    pub active_mask: u32,
    /// Threads that actually executed (active ∧ guard).
    pub exec_mask: u32,
    /// The instruction's resolved register-file accesses. The executor
    /// resolves the plan (once per static instruction under the SoA
    /// engine), so sinks consume it directly instead of each re-resolving
    /// `instr` per event.
    pub plan: &'a AccessPlan,
}

impl InstrEvent<'_> {
    /// Number of threads that executed the instruction.
    pub fn exec_threads(&self) -> u32 {
        self.exec_mask.count_ones()
    }
}

/// An observer of the executed instruction stream.
pub trait TraceSink {
    /// Called for every warp instruction issued (even fully predicated-off
    /// ones — they still read their operands).
    fn on_instr(&mut self, event: &InstrEvent<'_>);

    /// Called when a warp finishes executing.
    fn on_warp_done(&mut self, _warp: usize) {}

    /// Called after a destination register word is written, with the warp's
    /// full lane values for that word (`lanes[i]` is lane `i`; only lanes
    /// set in `exec_mask` were updated by this instruction). Emitted by the
    /// SoA executor only; the default implementation ignores it.
    fn on_reg_write(
        &mut self,
        _warp: usize,
        _at: InstrRef,
        _reg: rfh_isa::Reg,
        _lanes: &[u32],
        _exec_mask: u32,
    ) {
    }

    /// Called after a destination predicate is written, with the warp's
    /// per-lane truth bits (`bits & (1 << i)` is lane `i`; only lanes set
    /// in `exec_mask` were updated). Emitted by the SoA executor only.
    fn on_pred_write(
        &mut self,
        _warp: usize,
        _at: InstrRef,
        _pred: rfh_isa::PredReg,
        _bits: u32,
        _exec_mask: u32,
    ) {
    }
}

/// A sink that discards everything (for pure functional runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn on_instr(&mut self, _event: &InstrEvent<'_>) {}
}

/// A sink combinator that broadcasts every event to a list of child
/// sinks, in order.
///
/// [`crate::exec::execute`] already takes a slice of sinks, but a fanout
/// is itself a [`TraceSink`], so observer stacks compose: a fanout can
/// sit behind another fanout, or anywhere a single sink is expected
/// (e.g. the `rfhc trace` pipeline drives an exporter, a profiler, and a
/// counter through one).
#[derive(Default)]
pub struct FanoutSink<'a> {
    children: Vec<&'a mut dyn TraceSink>,
}

impl<'a> FanoutSink<'a> {
    /// An empty fanout (events are dropped until children are attached).
    pub fn new() -> Self {
        FanoutSink {
            children: Vec::new(),
        }
    }

    /// Attaches a child sink; events are delivered in attachment order.
    pub fn push(&mut self, sink: &'a mut dyn TraceSink) -> &mut Self {
        self.children.push(sink);
        self
    }

    /// Builder-style [`FanoutSink::push`].
    #[must_use]
    pub fn with(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.children.push(sink);
        self
    }

    /// Number of attached children.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Whether the fanout has no children.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

impl std::fmt::Debug for FanoutSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("children", &self.children.len())
            .finish()
    }
}

impl TraceSink for FanoutSink<'_> {
    fn on_instr(&mut self, event: &InstrEvent<'_>) {
        for child in &mut self.children {
            child.on_instr(event);
        }
    }

    fn on_warp_done(&mut self, warp: usize) {
        for child in &mut self.children {
            child.on_warp_done(warp);
        }
    }

    fn on_reg_write(
        &mut self,
        warp: usize,
        at: InstrRef,
        reg: rfh_isa::Reg,
        lanes: &[u32],
        exec_mask: u32,
    ) {
        for child in &mut self.children {
            child.on_reg_write(warp, at, reg, lanes, exec_mask);
        }
    }

    fn on_pred_write(
        &mut self,
        warp: usize,
        at: InstrRef,
        pred: rfh_isa::PredReg,
        bits: u32,
        exec_mask: u32,
    ) {
        for child in &mut self.children {
            child.on_pred_write(warp, at, pred, bits, exec_mask);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_isa::{ops, BlockId, Reg};

    #[test]
    fn exec_threads_counts_bits() {
        let i = ops::mov(Reg::new(0), 1.into());
        let plan = AccessPlan::resolve(&i);
        let ev = InstrEvent {
            warp: 0,
            at: InstrRef {
                block: BlockId::new(0),
                index: 0,
            },
            instr: &i,
            active_mask: 0xFFFF_FFFF,
            exec_mask: 0x0000_00FF,
            plan: &plan,
        };
        assert_eq!(ev.exec_threads(), 8);
        let mut sink = NullSink;
        sink.on_instr(&ev);
        sink.on_warp_done(0);
    }

    #[derive(Default)]
    struct Tally {
        instrs: usize,
        warps_done: usize,
    }

    impl TraceSink for Tally {
        fn on_instr(&mut self, _event: &InstrEvent<'_>) {
            self.instrs += 1;
        }
        fn on_warp_done(&mut self, _warp: usize) {
            self.warps_done += 1;
        }
    }

    #[test]
    fn fanout_broadcasts_to_all_children() {
        let i = ops::mov(Reg::new(0), 1.into());
        let plan = AccessPlan::resolve(&i);
        let ev = InstrEvent {
            warp: 0,
            at: InstrRef {
                block: BlockId::new(0),
                index: 0,
            },
            instr: &i,
            active_mask: u32::MAX,
            exec_mask: u32::MAX,
            plan: &plan,
        };
        let mut a = Tally::default();
        let mut b = Tally::default();
        {
            let mut fan = FanoutSink::new().with(&mut a).with(&mut b);
            assert_eq!(fan.len(), 2);
            assert!(!fan.is_empty());
            fan.on_instr(&ev);
            fan.on_instr(&ev);
            fan.on_warp_done(0);
        }
        assert_eq!((a.instrs, a.warps_done), (2, 1));
        assert_eq!((b.instrs, b.warps_done), (2, 1));
    }

    #[test]
    fn fanout_nests() {
        let i = ops::mov(Reg::new(0), 1.into());
        let plan = AccessPlan::resolve(&i);
        let ev = InstrEvent {
            warp: 3,
            at: InstrRef {
                block: BlockId::new(0),
                index: 0,
            },
            instr: &i,
            active_mask: u32::MAX,
            exec_mask: u32::MAX,
            plan: &plan,
        };
        let mut leaf = Tally::default();
        {
            let mut inner = FanoutSink::new().with(&mut leaf);
            let mut outer = FanoutSink::new().with(&mut inner);
            outer.on_instr(&ev);
            outer.on_warp_done(3);
        }
        assert_eq!((leaf.instrs, leaf.warps_done), (1, 1));
    }
}
