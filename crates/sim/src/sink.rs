//! The instruction-trace observer interface.
//!
//! The functional executor emits one event per executed warp instruction;
//! counting models ([`crate::counts`], [`crate::rfc`], [`crate::usage`])
//! implement [`TraceSink`] and accumulate whatever they need. This mirrors
//! the paper's methodology of a custom Ocelot trace analysis tool recording
//! hierarchy accesses over full program executions (§5.1).

use rfh_isa::{InstrRef, Instruction};

/// One executed warp instruction.
#[derive(Debug, Clone, Copy)]
pub struct InstrEvent<'a> {
    /// The issuing warp's global index.
    pub warp: usize,
    /// The instruction's position in the kernel.
    pub at: InstrRef,
    /// The instruction itself (with placement and liveness annotations).
    pub instr: &'a Instruction,
    /// Threads active in the warp when the instruction issued.
    pub active_mask: u32,
    /// Threads that actually executed (active ∧ guard).
    pub exec_mask: u32,
}

impl InstrEvent<'_> {
    /// Number of threads that executed the instruction.
    pub fn exec_threads(&self) -> u32 {
        self.exec_mask.count_ones()
    }
}

/// An observer of the executed instruction stream.
pub trait TraceSink {
    /// Called for every warp instruction issued (even fully predicated-off
    /// ones — they still read their operands).
    fn on_instr(&mut self, event: &InstrEvent<'_>);

    /// Called when a warp finishes executing.
    fn on_warp_done(&mut self, _warp: usize) {}
}

/// A sink that discards everything (for pure functional runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn on_instr(&mut self, _event: &InstrEvent<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_isa::{ops, BlockId, Reg};

    #[test]
    fn exec_threads_counts_bits() {
        let i = ops::mov(Reg::new(0), 1.into());
        let ev = InstrEvent {
            warp: 0,
            at: InstrRef {
                block: BlockId::new(0),
                index: 0,
            },
            instr: &i,
            active_mask: 0xFFFF_FFFF,
            exec_mask: 0x0000_00FF,
        };
        assert_eq!(ev.exec_threads(), 8);
        let mut sink = NullSink;
        sink.on_instr(&ev);
        sink.on_warp_done(0);
    }
}
