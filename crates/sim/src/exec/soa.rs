//! The warp-batched structure-of-arrays executor (the default engine).
//!
//! The paper's premise (§4) is that register accesses are statically
//! resolvable at compile time — which means the simulator can resolve
//! them *once per kernel* instead of once per executed lane. A decode
//! pass lowers every instruction into a flat [`DecodedOp`] table:
//!
//! * each source operand becomes a [`SrcOp`] — a pre-folded constant, a
//!   special-register tag, or a slab offset already routed through the
//!   placement annotations (MRF / ORF entry / LRF bank);
//! * the destination becomes a [`DstPlan`] — the exact list of slab rows
//!   receiving the low and high words, with the wide-write rules (ORF
//!   pairs occupy `entry` and `entry + 1`, the LRF drops the upper word)
//!   applied at decode time;
//! * branch targets, fall-throughs, and ipdom reconvergence points are
//!   pre-normalized flat PCs (`validate` guarantees non-empty blocks, so
//!   `pc + 1` *is* the legacy `normalize`);
//! * the instruction's [`AccessPlan`] is resolved once and handed to
//!   every [`TraceSink`] by reference, instead of each sink re-resolving
//!   it per event.
//!
//! Warp state is lane-major: one contiguous `u32` slab holds the MRF,
//! ORF, and LRF rows back to back (register `r`, lane `l` lives at
//! `r * width + l`), and predicates are per-register 32-bit lane masks.
//! The hot loop is then a dispatch over `ops[pc]` running short
//! contiguous lane loops — no per-lane operand matching, no per-step
//! block scans, no per-instruction allocation.
//!
//! Semantics are pinned to [`super::reference`] by the differential
//! conformance suite; see that module for the oracle contract.

use rfh_analysis::DomTree;
use rfh_isa::access::AccessPlan;
use rfh_isa::{
    CmpOp, InstrRef, Instruction, Kernel, Opcode, Operand, ReadLoc, Reg, Space, Special, Width,
    WriteLoc,
};

use super::{
    eval_alu, eval_cmp, lrf_bank_count, ExecError, ExecMode, ExecReport, Launch, Phase, POISON,
};
use crate::machine::MachineConfig;
use crate::mem::{GlobalMemory, SharedMemory};
use crate::sink::{InstrEvent, TraceSink};

/// One pre-decoded source operand.
#[derive(Debug, Clone, Copy)]
enum SrcOp {
    /// Absent operand slot (reads as zero, matching the reference
    /// interpreter's implicit zero for missing B/C operands).
    Zero,
    /// A constant, pre-folded from an integer or float immediate.
    Const(u32),
    /// A special register, computed per lane at execution.
    Special(Special),
    /// A slab row: the lane's value is `data[base + lane]`. The base is
    /// already routed through the placement annotation for this slot.
    Slab(u32),
}

/// The slab rows a destination write touches, resolved at decode time.
///
/// `lo` rows receive the low word, `hi` rows the high word of a wide
/// write; each list holds at most two rows (upper level + MRF copy).
/// The wide-LRF rule is encoded here by construction: the LRF row only
/// ever appears in `lo`, so the upper word is dropped at the LRF and
/// reaches the MRF only through an `also_mrf` copy.
#[derive(Debug, Clone, Copy, Default)]
struct DstPlan {
    lo: [u32; 2],
    n_lo: u8,
    hi: [u32; 2],
    n_hi: u8,
    wide: bool,
}

impl DstPlan {
    fn push_lo(&mut self, base: usize) {
        self.lo[self.n_lo as usize] = base as u32;
        self.n_lo += 1;
    }

    fn push_hi(&mut self, base: usize) {
        self.hi[self.n_hi as usize] = base as u32;
        self.n_hi += 1;
    }
}

/// A pre-decoded read-operand fill (§4.4): copy the MRF row at `reg_off`
/// into the ORF row at `orf_off` after the instruction executes.
#[derive(Debug, Clone, Copy)]
struct Fill {
    orf_off: u32,
    reg_off: u32,
    /// Whether the instruction's own destination write covers the filled
    /// entry — static per instruction, so the runtime collision rule
    /// (destination wins on executing lanes) is a pre-computed flag.
    covered_by_dst: bool,
}

/// The dispatch class of a decoded instruction.
#[derive(Debug, Clone, Copy)]
enum OpKind {
    /// Default-datapath ALU op, evaluated by [`eval_alu`]. `ok` is
    /// pre-classified at decode ([`eval_alu`] returns `None` purely by
    /// opcode), so the lane loop never tests the `Option` — the
    /// unsupported-opcode error is raised once, and only when at least
    /// one lane actually executes (the reference interpreter's rule).
    Alu {
        ok: bool,
    },
    /// An ALU-class op with a 64-bit destination: rejected at issue, even
    /// fully predicated off (matching the reference interpreter).
    AluWide,
    /// A branch with pre-normalized flat targets.
    Bra {
        target: u32,
        fall: u32,
        reconv: Option<u32>,
    },
    Exit,
    Bar,
    St(Space),
    Ld(Space),
    Tex,
    Setp {
        cmp: CmpOp,
        float: bool,
        p: usize,
    },
    Sel {
        p: usize,
    },
}

/// One instruction, lowered for dispatch.
#[derive(Debug, Clone)]
struct DecodedOp<'k> {
    kind: OpKind,
    op: Opcode,
    at: InstrRef,
    instr: &'k Instruction,
    guard: Option<(usize, bool)>,
    srcs: [SrcOp; 3],
    dst: DstPlan,
    fills: Vec<Fill>,
    ends_strand: bool,
    /// Resolved once here; handed to every sink by reference.
    plan: AccessPlan,
}

/// The decoded kernel: a flat op table plus the slab geometry shared by
/// every warp of the launch.
struct DecodedKernel<'k> {
    ops: Vec<DecodedOp<'k>>,
    num_preds: usize,
    slab_len: usize,
    /// Start of the ORF+LRF region — everything from here up is poisoned
    /// at strand boundaries.
    upper_base: usize,
    hierarchy: bool,
    width: usize,
}

fn decode<'k>(
    kernel: &'k Kernel,
    mode: &ExecMode,
    ipdom: &DomTree,
    machine: &MachineConfig,
) -> DecodedKernel<'k> {
    let width = machine.warp_width;
    let num_regs = kernel.num_regs().max(1) as usize;
    let num_preds = kernel.num_preds().max(1) as usize;
    let (orf_entries, lrf_banks, hierarchy) = match mode {
        ExecMode::Baseline => (0, 0, false),
        ExecMode::Hierarchy(cfg) => (cfg.orf_entries, lrf_bank_count(cfg.lrf), true),
    };
    let orf_base = num_regs * width;
    let lrf_base = orf_base + orf_entries * width;
    let slab_len = lrf_base + lrf_banks * width;

    // Flat-PC table: block b starts at block_start[b]. `validate`
    // guarantees every block is non-empty, so advancing a flat pc by one
    // is exactly the reference interpreter's `normalize(kernel, (b, i+1))`
    // and the table is never indexed past its end (the last flat op is an
    // unguarded `exit` or `bra`).
    let mut block_start = Vec::with_capacity(kernel.blocks.len());
    let mut total = 0u32;
    for b in &kernel.blocks {
        block_start.push(total);
        total += b.instrs.len() as u32;
    }

    let mut ops: Vec<DecodedOp<'k>> = Vec::with_capacity(total as usize);
    for (at, instr) in kernel.iter_instrs() {
        let flat = ops.len() as u32;

        let mut srcs = [SrcOp::Zero; 3];
        for (slot, operand) in instr.srcs.iter().enumerate().take(3) {
            srcs[slot] = match *operand {
                Operand::Special(s) => SrcOp::Special(s),
                Operand::Reg(r) => {
                    let base = if hierarchy {
                        match instr.read_locs[slot] {
                            ReadLoc::Mrf | ReadLoc::MrfFillOrf(_) => r.index() as usize * width,
                            ReadLoc::Orf(e) => orf_base + e as usize * width,
                            ReadLoc::Lrf(bank) => {
                                lrf_base + bank.map(|s| s.index()).unwrap_or(0) * width
                            }
                        }
                    } else {
                        r.index() as usize * width
                    };
                    SrcOp::Slab(base as u32)
                }
                c => SrcOp::Const(c.const_bits().expect("imm or fbits")),
            };
        }

        let mut dst = DstPlan::default();
        if let Some(d) = instr.dst {
            let r = d.reg.index() as usize;
            dst.wide = d.width == Width::W64;
            // `check_placements` has already range-checked every resolved
            // place (including the `entry + 1` word of wide ORF writes),
            // so these offsets are in bounds by construction.
            match (hierarchy, instr.write_loc) {
                (false, _) | (true, WriteLoc::Mrf) => {
                    dst.push_lo(r * width);
                    if dst.wide {
                        dst.push_hi((r + 1) * width);
                    }
                }
                (true, WriteLoc::Orf { entry, also_mrf }) => {
                    dst.push_lo(orf_base + entry as usize * width);
                    if dst.wide {
                        dst.push_hi(orf_base + (entry as usize + 1) * width);
                    }
                    if also_mrf {
                        dst.push_lo(r * width);
                        if dst.wide {
                            dst.push_hi((r + 1) * width);
                        }
                    }
                }
                (true, WriteLoc::Lrf { bank, also_mrf }) => {
                    dst.push_lo(lrf_base + bank.map(|s| s.index()).unwrap_or(0) * width);
                    if also_mrf {
                        dst.push_lo(r * width);
                        if dst.wide {
                            dst.push_hi((r + 1) * width);
                        }
                    }
                }
            }
        }

        let fills: Vec<Fill> = if hierarchy {
            let written: Option<(usize, usize)> = match (instr.write_loc, instr.dst) {
                (WriteLoc::Orf { entry, .. }, Some(d)) => {
                    Some((entry as usize, d.width.regs() as usize))
                }
                _ => None,
            };
            instr
                .read_locs
                .iter()
                .enumerate()
                .filter_map(|(slot, loc)| {
                    let e = loc.orf_fill()? as usize;
                    let r = instr.srcs[slot].as_reg()?;
                    Some(Fill {
                        orf_off: (orf_base + e * width) as u32,
                        reg_off: (r.index() as usize * width) as u32,
                        covered_by_dst: written.is_some_and(|(base, w)| e >= base && e < base + w),
                    })
                })
                .collect()
        } else {
            Vec::new()
        };

        let kind = match instr.op {
            Opcode::Bra => OpKind::Bra {
                target: block_start[instr.target.expect("validated").index()],
                fall: flat + 1,
                reconv: ipdom.idom(at.block).map(|b| block_start[b.index()]),
            },
            Opcode::Exit => OpKind::Exit,
            Opcode::Bar => OpKind::Bar,
            Opcode::St(space) => OpKind::St(space),
            Opcode::Ld(space) => OpKind::Ld(space),
            Opcode::Tex => OpKind::Tex,
            Opcode::Setp(cmp) => OpKind::Setp {
                cmp,
                float: false,
                p: instr.pdst.expect("validated").index() as usize,
            },
            Opcode::FSetp(cmp) => OpKind::Setp {
                cmp,
                float: true,
                p: instr.pdst.expect("validated").index() as usize,
            },
            Opcode::Sel => OpKind::Sel {
                p: instr.psrc.expect("validated").index() as usize,
            },
            _ => {
                if instr.dst.is_some_and(|d| d.width == Width::W64) {
                    OpKind::AluWide
                } else {
                    OpKind::Alu {
                        ok: eval_alu(instr.op, 0, 0, 0).is_some(),
                    }
                }
            }
        };

        ops.push(DecodedOp {
            kind,
            op: instr.op,
            at,
            instr,
            guard: instr.guard.map(|g| (g.reg.index() as usize, g.negated)),
            srcs,
            dst,
            fills,
            ends_strand: instr.ends_strand,
            plan: AccessPlan::resolve(instr),
        });
    }

    DecodedKernel {
        ops,
        num_preds,
        slab_len,
        upper_base: orf_base,
        hierarchy,
        width,
    }
}

#[derive(Debug, Clone, Copy)]
struct Token {
    pc: u32,
    mask: u32,
    reconv: Option<u32>,
}

/// Resumable per-warp execution state: lane-major register slab,
/// predicate lane masks, and the divergence token stack.
struct SoaWarp {
    warp_in_cta: usize,
    lanes: usize,
    data: Vec<u32>,
    preds: Vec<u32>,
    stack: Vec<Token>,
    exited: u32,
    steps: u64,
    done: bool,
}

/// Launch-wide values the lane loops need for special registers.
struct LaneCtx<'a> {
    launch: &'a Launch,
    cta: usize,
    warp: usize,
    warp_in_cta: usize,
}

impl LaneCtx<'_> {
    #[inline]
    fn special(&self, s: Special, lane: usize) -> u32 {
        match s {
            Special::TidX => (self.warp_in_cta * 32 + lane) as u32,
            Special::CtaIdX => self.cta as u32,
            Special::NTidX => self.launch.threads_per_cta as u32,
            Special::NCtaIdX => self.launch.ctas as u32,
            Special::LaneId => lane as u32,
            Special::WarpId => self.warp_in_cta as u32,
        }
    }
}

#[inline]
fn fetch(src: SrcOp, data: &[u32], ctx: &LaneCtx<'_>, lane: usize) -> u32 {
    match src {
        SrcOp::Zero => 0,
        SrcOp::Const(v) => v,
        SrcOp::Special(s) => ctx.special(s, lane),
        SrcOp::Slab(base) => data[base as usize + lane],
    }
}

#[inline]
fn write_lane(data: &mut [u32], d: &DstPlan, lane: usize, lo: u32, hi: u32) {
    for i in 0..d.n_lo as usize {
        data[d.lo[i] as usize + lane] = lo;
    }
    for i in 0..d.n_hi as usize {
        data[d.hi[i] as usize + lane] = hi;
    }
}

/// Runs a validated, placement-checked launch on the SoA engine. Called
/// by [`super::execute_with_engine`]; validation and `check_placements`
/// have already run.
pub(crate) fn run(
    kernel: &Kernel,
    launch: &Launch,
    memory: &mut GlobalMemory,
    mode: ExecMode,
    machine: &MachineConfig,
    sinks: &mut [&mut dyn TraceSink],
) -> Result<ExecReport, ExecError> {
    let ipdom = DomTree::post_dominators(kernel);
    let dk = decode(kernel, &mode, &ipdom, machine);
    let warps_per_cta = launch.threads_per_cta.div_ceil(machine.warp_width);
    let mut report = ExecReport::default();
    // Scratch for captured fill values: at most one per source slot.
    let mut fill_buf = vec![0u32; 3 * dk.width];

    for cta in 0..launch.ctas {
        // Barrier-phased execution of the CTA's warps.
        let mut shared = SharedMemory::new(launch.shared_words);
        let mut warps: Vec<SoaWarp> = (0..warps_per_cta)
            .map(|warp_in_cta| {
                let lanes = (launch.threads_per_cta - warp_in_cta * machine.warp_width)
                    .min(machine.warp_width);
                let full_mask: u32 = if lanes == 32 {
                    u32::MAX
                } else {
                    (1u32 << lanes) - 1
                };
                let mut data = vec![0u32; dk.slab_len];
                data[dk.upper_base..].fill(POISON);
                SoaWarp {
                    warp_in_cta,
                    lanes,
                    data,
                    preds: vec![0; dk.num_preds],
                    stack: vec![Token {
                        pc: 0,
                        mask: full_mask,
                        reconv: None,
                    }],
                    exited: 0,
                    steps: 0,
                    done: false,
                }
            })
            .collect();
        while warps.iter().any(|w| !w.done) {
            for w in warps.iter_mut() {
                if w.done {
                    continue;
                }
                let ctx = LaneCtx {
                    launch,
                    cta,
                    warp: cta * warps_per_cta + w.warp_in_cta,
                    warp_in_cta: w.warp_in_cta,
                };
                let outcome = step_warp(
                    &dk,
                    &ctx,
                    w,
                    memory,
                    &mut shared,
                    machine,
                    sinks,
                    &mut report,
                    &mut fill_buf,
                )?;
                if outcome == Phase::Done {
                    w.done = true;
                    for s in sinks.iter_mut() {
                        s.on_warp_done(ctx.warp);
                    }
                    report.warps += 1;
                }
            }
        }
    }
    Ok(report)
}

/// Runs one warp until its next barrier or completion.
///
/// Event order per instruction matches the reference interpreter exactly:
/// mask check → budget → guard → sinks → report counters → fill capture →
/// dispatch → fill deposit → strand poison → pc advance. Errors abort
/// immediately, leaving earlier lanes' effects in place, exactly as the
/// oracle does.
#[allow(clippy::too_many_arguments)]
fn step_warp(
    dk: &DecodedKernel<'_>,
    ctx: &LaneCtx<'_>,
    w: &mut SoaWarp,
    memory: &mut GlobalMemory,
    shared: &mut SharedMemory,
    machine: &MachineConfig,
    sinks: &mut [&mut dyn TraceSink],
    report: &mut ExecReport,
    fill_buf: &mut [u32],
) -> Result<Phase, ExecError> {
    let lanes = w.lanes;
    let full_mask: u32 = if lanes == 32 {
        u32::MAX
    } else {
        (1u32 << lanes) - 1
    };
    let width = dk.width;
    let SoaWarp {
        data,
        preds,
        stack,
        exited,
        steps,
        ..
    } = w;
    let data = data.as_mut_slice();

    while let Some(tok) = stack.last_mut() {
        let mask = tok.mask & !*exited;
        if mask == 0 || Some(tok.pc) == tok.reconv {
            stack.pop();
            continue;
        }
        let op = &dk.ops[tok.pc as usize];
        *steps += 1;
        if *steps > machine.max_warp_instructions {
            return Err(ExecError::InstructionBudget { warp: ctx.warp });
        }

        // Evaluate the guard. Predicate lane masks only ever carry bits
        // below `lanes`, and so does `mask`, so the negated form is a
        // plain complement.
        let exec_mask = match op.guard {
            None => mask,
            Some((p, negated)) => {
                let pm = preds[p];
                mask & if negated { !pm } else { pm }
            }
        };

        for s in sinks.iter_mut() {
            s.on_instr(&InstrEvent {
                warp: ctx.warp,
                at: op.at,
                instr: op.instr,
                active_mask: mask,
                exec_mask,
                plan: &op.plan,
            });
        }
        report.warp_instructions += 1;
        report.thread_instructions += exec_mask.count_ones() as u64;

        // Capture read-operand fill values before the instruction
        // executes: reads see the pre-fill state, and the deposit lands
        // after execution with the destination write winning on a
        // same-entry collision (see `exec::reference` for the full rule).
        for (i, f) in op.fills.iter().enumerate() {
            let base = f.reg_off as usize;
            fill_buf[i * width..i * width + lanes].copy_from_slice(&data[base..base + lanes]);
        }

        match op.kind {
            OpKind::Bra {
                target,
                fall,
                reconv,
            } => {
                let taken = exec_mask;
                let not_taken = mask & !taken;
                if not_taken == 0 {
                    tok.pc = target;
                } else if taken == 0 {
                    tok.pc = fall;
                } else {
                    match reconv {
                        Some(r) => {
                            tok.pc = r;
                            stack.push(Token {
                                pc: fall,
                                mask: not_taken,
                                reconv: Some(r),
                            });
                            stack.push(Token {
                                pc: target,
                                mask: taken,
                                reconv: Some(r),
                            });
                        }
                        None => {
                            // Paths never rejoin: run each side to exit.
                            tok.mask = 0;
                            stack.push(Token {
                                pc: fall,
                                mask: not_taken,
                                reconv: None,
                            });
                            stack.push(Token {
                                pc: target,
                                mask: taken,
                                reconv: None,
                            });
                        }
                    }
                }
                continue;
            }
            OpKind::Exit => {
                *exited |= exec_mask;
                if op.guard.is_none() {
                    stack.pop();
                } else {
                    tok.pc += 1;
                }
                continue;
            }
            OpKind::Bar => {
                // Yield to the CTA scheduler: every warp of the CTA
                // reaches this barrier before any proceeds past it.
                if dk.hierarchy && op.ends_strand {
                    data[dk.upper_base..].fill(POISON);
                }
                tok.pc += 1;
                return Ok(Phase::Barrier);
            }
            OpKind::St(space) => {
                for lane in 0..lanes {
                    if exec_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let addr = fetch(op.srcs[0], data, ctx, lane);
                    let value = fetch(op.srcs[1], data, ctx, lane);
                    let ok = match space {
                        Space::Global | Space::Local => memory.store(addr, value),
                        Space::Shared => shared.store(addr, value),
                        Space::Param => false,
                    };
                    if !ok {
                        return Err(ExecError::OutOfBounds {
                            space: space.mnemonic(),
                            addr,
                            at: op.at,
                        });
                    }
                }
            }
            OpKind::Ld(space) => {
                let wide = op.dst.wide;
                for lane in 0..lanes {
                    if exec_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let addr = fetch(op.srcs[0], data, ctx, lane);
                    let load_one = |a: u32| -> Result<u32, ExecError> {
                        let v = match space {
                            Space::Global | Space::Local => memory.load(a),
                            Space::Shared => shared.load(a),
                            Space::Param => ctx.launch.params.get(a as usize).copied(),
                        };
                        v.ok_or(ExecError::OutOfBounds {
                            space: space.mnemonic(),
                            addr: a,
                            at: op.at,
                        })
                    };
                    let lo = load_one(addr)?;
                    let hi = if wide {
                        load_one(addr.wrapping_add(1))?
                    } else {
                        0
                    };
                    write_lane(data, &op.dst, lane, lo, hi);
                }
            }
            OpKind::Tex => {
                for lane in 0..lanes {
                    if exec_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let coord = fetch(op.srcs[0], data, ctx, lane);
                    let v = memory.load(coord).ok_or(ExecError::OutOfBounds {
                        space: "texture",
                        addr: coord,
                        at: op.at,
                    })?;
                    write_lane(data, &op.dst, lane, v, 0);
                }
            }
            OpKind::Setp { cmp, float, p } => {
                let mut pm = preds[p];
                for lane in 0..lanes {
                    let bit = 1u32 << lane;
                    if exec_mask & bit == 0 {
                        continue;
                    }
                    let a = fetch(op.srcs[0], data, ctx, lane);
                    let b = fetch(op.srcs[1], data, ctx, lane);
                    if eval_cmp(cmp, float, a, b) {
                        pm |= bit;
                    } else {
                        pm &= !bit;
                    }
                }
                preds[p] = pm;
            }
            OpKind::Sel { p } => {
                let pm = preds[p];
                for lane in 0..lanes {
                    let bit = 1u32 << lane;
                    if exec_mask & bit == 0 {
                        continue;
                    }
                    let a = fetch(op.srcs[0], data, ctx, lane);
                    let b = fetch(op.srcs[1], data, ctx, lane);
                    let v = if pm & bit != 0 { a } else { b };
                    write_lane(data, &op.dst, lane, v, 0);
                }
            }
            OpKind::AluWide => {
                return Err(ExecError::Unsupported {
                    what: format!("64-bit destination on `{}`", op.instr),
                    at: op.at,
                });
            }
            OpKind::Alu { ok } => {
                if exec_mask != 0 && !ok {
                    return Err(ExecError::Unsupported {
                        what: format!("`{}` has no ALU semantics", op.op),
                        at: op.at,
                    });
                }
                // Full-mask fast path: every lane executes, so the lane
                // loop runs branch-free (`ok` guarantees `Some`).
                if exec_mask == full_mask {
                    for lane in 0..lanes {
                        let a = fetch(op.srcs[0], data, ctx, lane);
                        let b = fetch(op.srcs[1], data, ctx, lane);
                        let c = fetch(op.srcs[2], data, ctx, lane);
                        let v = eval_alu(op.op, a, b, c).unwrap_or(0);
                        write_lane(data, &op.dst, lane, v, 0);
                    }
                } else {
                    for lane in 0..lanes {
                        if exec_mask & (1 << lane) == 0 {
                            continue;
                        }
                        let a = fetch(op.srcs[0], data, ctx, lane);
                        let b = fetch(op.srcs[1], data, ctx, lane);
                        let c = fetch(op.srcs[2], data, ctx, lane);
                        let v = eval_alu(op.op, a, b, c).unwrap_or(0);
                        write_lane(data, &op.dst, lane, v, 0);
                    }
                }
            }
        }

        // Post-write observer hooks: hand the sinks the destination lane
        // values (and the new predicate lane mask) for the lanes that
        // executed. Read back from the first destination row — every `lo`
        // row received the same value for executing lanes, and non-exec
        // lanes are unspecified by the hook contract. Emitted before the
        // fill deposit, which never alters an executing lane's dst entry.
        if exec_mask != 0 && !sinks.is_empty() {
            if let Some(d) = op.instr.dst {
                if op.dst.n_lo > 0 {
                    let base = op.dst.lo[0] as usize;
                    for s in sinks.iter_mut() {
                        s.on_reg_write(
                            ctx.warp,
                            op.at,
                            d.reg,
                            &data[base..base + lanes],
                            exec_mask,
                        );
                    }
                }
                if op.dst.wide && op.dst.n_hi > 0 {
                    let base = op.dst.hi[0] as usize;
                    let hi_reg = Reg::new(d.reg.index() + 1);
                    for s in sinks.iter_mut() {
                        s.on_reg_write(
                            ctx.warp,
                            op.at,
                            hi_reg,
                            &data[base..base + lanes],
                            exec_mask,
                        );
                    }
                }
            }
            if let OpKind::Setp { p, .. } = op.kind {
                if let Some(pd) = op.instr.pdst {
                    for s in sinks.iter_mut() {
                        s.on_pred_write(ctx.warp, op.at, pd, preds[p], exec_mask);
                    }
                }
            }
        }

        // Deposit the captured fills: active lanes receive the pre-execute
        // MRF value unless the destination write already covered the entry
        // for an executing lane.
        for (i, f) in op.fills.iter().enumerate() {
            let vals = &fill_buf[i * width..i * width + lanes];
            for (lane, v) in vals.iter().enumerate() {
                let bit = 1u32 << lane;
                if mask & bit == 0 {
                    continue;
                }
                if f.covered_by_dst && exec_mask & bit != 0 {
                    continue;
                }
                data[f.orf_off as usize + lane] = *v;
            }
        }

        // Strand boundaries invalidate the upper levels.
        if dk.hierarchy && op.ends_strand {
            data[dk.upper_base..].fill(POISON);
        }

        tok.pc += 1;
    }
    Ok(Phase::Done)
}
