//! The frozen reference interpreter (the differential oracle).
//!
//! This is the original per-thread interpreter, preserved verbatim when
//! the warp-batched SoA executor (`exec::soa`) replaced it as the default
//! engine. It re-decodes every operand per lane and re-resolves each
//! instruction's [`AccessPlan`] per event — slow, but the semantics were
//! hardened by years of chaos/property testing, so it serves as the
//! ground truth the SoA engine is differentially checked against
//! (`tests/exec_differential.rs` and the chaos
//! `run_exec_differential_layer`).
//!
//! Do not "improve" this module: its value is that it does not change.
//! Behavioral fixes must land in both engines, with the differential
//! suite proving they agree.

use rfh_alloc::LrfMode;
use rfh_analysis::DomTree;
use rfh_isa::access::AccessPlan;
use rfh_isa::{
    InstrRef, Instruction, Kernel, Opcode, Operand, ReadLoc, Space, Special, Width, WriteLoc,
};

use super::{eval_alu, eval_cmp, Engine, ExecError, ExecMode, ExecReport, Launch, Phase, POISON};
use crate::machine::MachineConfig;
use crate::mem::{GlobalMemory, SharedMemory};
use crate::sink::{InstrEvent, TraceSink};

/// [`super::execute`], interpreted by the reference engine.
///
/// # Errors
///
/// As for [`super::execute`].
pub fn execute(
    kernel: &Kernel,
    launch: &Launch,
    memory: &mut GlobalMemory,
    mode: ExecMode,
    sinks: &mut [&mut dyn TraceSink],
) -> Result<ExecReport, ExecError> {
    let machine = MachineConfig::paper();
    execute_with(kernel, launch, memory, mode, &machine, sinks)
}

/// [`super::execute_with`], interpreted by the reference engine.
///
/// # Errors
///
/// As for [`super::execute`].
pub fn execute_with(
    kernel: &Kernel,
    launch: &Launch,
    memory: &mut GlobalMemory,
    mode: ExecMode,
    machine: &MachineConfig,
    sinks: &mut [&mut dyn TraceSink],
) -> Result<ExecReport, ExecError> {
    super::execute_with_engine(
        kernel,
        launch,
        memory,
        mode,
        machine,
        Engine::Reference,
        sinks,
    )
}

type Pc = (u32, usize);

#[derive(Debug, Clone, Copy)]
struct Token {
    pc: Pc,
    mask: u32,
    reconv: Option<Pc>,
}

/// Per-warp architectural and hierarchy state.
struct WarpState {
    regs: Vec<Vec<u32>>,   // [reg][lane]
    preds: Vec<Vec<bool>>, // [pred][lane]
    orf: Vec<Vec<u32>>,    // [entry][lane]
    lrf: Vec<Vec<u32>>,    // [bank][lane]
}

impl WarpState {
    fn new(kernel: &Kernel, width: usize, mode: &ExecMode) -> WarpState {
        let (orf_entries, lrf_banks) = match mode {
            ExecMode::Baseline => (0, 0),
            ExecMode::Hierarchy(cfg) => (
                cfg.orf_entries,
                match cfg.lrf {
                    LrfMode::None => 0,
                    LrfMode::Unified => 1,
                    LrfMode::Split => 3,
                },
            ),
        };
        WarpState {
            regs: vec![vec![0; width]; kernel.num_regs().max(1) as usize],
            preds: vec![vec![false; width]; kernel.num_preds().max(1) as usize],
            orf: vec![vec![POISON; width]; orf_entries],
            lrf: vec![vec![POISON; width]; lrf_banks],
        }
    }

    fn poison_upper(&mut self) {
        for e in &mut self.orf {
            e.fill(POISON);
        }
        for b in &mut self.lrf {
            b.fill(POISON);
        }
    }
}

struct WarpContext<'a> {
    kernel: &'a Kernel,
    launch: &'a Launch,
    mode: ExecMode,
    warp: usize,
    cta: usize,
    warp_in_cta: usize,
}

impl WarpContext<'_> {
    fn special(&self, s: Special, lane: usize) -> u32 {
        match s {
            Special::TidX => (self.warp_in_cta * 32 + lane) as u32,
            Special::CtaIdX => self.cta as u32,
            Special::NTidX => self.launch.threads_per_cta as u32,
            Special::NCtaIdX => self.launch.ctas as u32,
            Special::LaneId => lane as u32,
            Special::WarpId => self.warp_in_cta as u32,
        }
    }

    /// Reads one source operand for `lane`, honouring hierarchy placements.
    fn read_operand(
        &self,
        state: &WarpState,
        instr: &Instruction,
        slot: usize,
        lane: usize,
    ) -> u32 {
        match instr.srcs[slot] {
            Operand::Imm(v) => v as u32,
            Operand::FBits(bits) => bits,
            Operand::Special(s) => self.special(s, lane),
            Operand::Reg(r) => match self.mode {
                ExecMode::Baseline => state.regs[r.index() as usize][lane],
                ExecMode::Hierarchy(_) => match instr.read_locs[slot] {
                    ReadLoc::Mrf | ReadLoc::MrfFillOrf(_) => state.regs[r.index() as usize][lane],
                    ReadLoc::Orf(e) => state.orf[e as usize][lane],
                    ReadLoc::Lrf(bank) => {
                        let b = bank.map(|s| s.index()).unwrap_or(0);
                        state.lrf[b][lane]
                    }
                },
            },
        }
    }

    /// Writes the destination for `lane`, honouring hierarchy placements.
    fn write_dst(&self, state: &mut WarpState, instr: &Instruction, lane: usize, lo: u32, hi: u32) {
        let dst = instr.dst.expect("write_dst requires a destination");
        let wide = dst.width == Width::W64;
        let r = dst.reg.index() as usize;
        let write_mrf = |state: &mut WarpState| {
            state.regs[r][lane] = lo;
            if wide {
                state.regs[r + 1][lane] = hi;
            }
        };
        match (self.mode, instr.write_loc) {
            (ExecMode::Baseline, _) | (_, WriteLoc::Mrf) => write_mrf(state),
            (ExecMode::Hierarchy(_), WriteLoc::Orf { entry, also_mrf }) => {
                state.orf[entry as usize][lane] = lo;
                if wide {
                    state.orf[entry as usize + 1][lane] = hi;
                }
                if also_mrf {
                    write_mrf(state);
                }
            }
            (ExecMode::Hierarchy(_), WriteLoc::Lrf { bank, also_mrf }) => {
                let b = bank.map(|s| s.index()).unwrap_or(0);
                state.lrf[b][lane] = lo;
                if also_mrf {
                    write_mrf(state);
                }
            }
        }
    }
}

fn normalize(kernel: &Kernel, pc: Pc) -> Pc {
    let (mut b, mut i) = pc;
    while (b as usize) < kernel.blocks.len() && i >= kernel.blocks[b as usize].instrs.len() {
        b += 1;
        i = 0;
    }
    (b, i)
}

/// Runs a validated, placement-checked launch on the reference engine.
/// Called by [`super::execute_with_engine`]; validation and
/// `check_placements` have already run.
pub(crate) fn run(
    kernel: &Kernel,
    launch: &Launch,
    memory: &mut GlobalMemory,
    mode: ExecMode,
    machine: &MachineConfig,
    sinks: &mut [&mut dyn TraceSink],
) -> Result<ExecReport, ExecError> {
    let ipdom = DomTree::post_dominators(kernel);
    let warps_per_cta = launch.threads_per_cta.div_ceil(machine.warp_width);
    let mut shared: Vec<SharedMemory> = (0..launch.ctas)
        .map(|_| SharedMemory::new(launch.shared_words))
        .collect();
    let mut report = ExecReport::default();

    for (cta, cta_shared) in shared.iter_mut().enumerate() {
        // Barrier-phased execution of the CTA's warps.
        let mut runs: Vec<WarpRun> = (0..warps_per_cta)
            .map(|warp_in_cta| {
                let lanes = (launch.threads_per_cta - warp_in_cta * machine.warp_width)
                    .min(machine.warp_width);
                let full_mask: u32 = if lanes == 32 {
                    u32::MAX
                } else {
                    (1u32 << lanes) - 1
                };
                WarpRun {
                    warp_in_cta,
                    lanes,
                    state: WarpState::new(kernel, machine.warp_width, &mode),
                    stack: vec![Token {
                        pc: (0, 0),
                        mask: full_mask,
                        reconv: None,
                    }],
                    exited: 0,
                    steps: 0,
                    done: false,
                }
            })
            .collect();
        while runs.iter().any(|r| !r.done) {
            for run in runs.iter_mut() {
                if run.done {
                    continue;
                }
                let warp = cta * warps_per_cta + run.warp_in_cta;
                let ctx = WarpContext {
                    kernel,
                    launch,
                    mode,
                    warp,
                    cta,
                    warp_in_cta: run.warp_in_cta,
                };
                let outcome = run_warp_until(
                    &ctx,
                    run,
                    memory,
                    cta_shared,
                    &ipdom,
                    machine,
                    sinks,
                    &mut report,
                )?;
                if outcome == Phase::Done {
                    run.done = true;
                    for s in sinks.iter_mut() {
                        s.on_warp_done(warp);
                    }
                    report.warps += 1;
                }
            }
        }
    }
    Ok(report)
}

/// Resumable per-warp execution state.
struct WarpRun {
    warp_in_cta: usize,
    lanes: usize,
    state: WarpState,
    stack: Vec<Token>,
    exited: u32,
    steps: u64,
    done: bool,
}

#[allow(clippy::too_many_arguments)]
fn run_warp_until(
    ctx: &WarpContext<'_>,
    run: &mut WarpRun,
    memory: &mut GlobalMemory,
    shared: &mut SharedMemory,
    ipdom: &DomTree,
    machine: &MachineConfig,
    sinks: &mut [&mut dyn TraceSink],
    report: &mut ExecReport,
) -> Result<Phase, ExecError> {
    let kernel = ctx.kernel;
    let lanes = run.lanes;
    let state = &mut run.state;
    let stack = &mut run.stack;
    // Scratch access plan for trace events (the SoA engine pre-resolves
    // these at decode; the oracle resolves per event, as it always did).
    let mut plan = AccessPlan::new();

    while let Some(tok) = stack.last_mut() {
        let mask = tok.mask & !run.exited;
        if mask == 0 || Some(tok.pc) == tok.reconv {
            stack.pop();
            continue;
        }
        let (block, index) = tok.pc;
        let at = InstrRef {
            block: rfh_isa::BlockId::new(block),
            index,
        };
        let instr = &kernel.blocks[block as usize].instrs[index];
        run.steps += 1;
        if run.steps > machine.max_warp_instructions {
            return Err(ExecError::InstructionBudget { warp: ctx.warp });
        }

        // Evaluate the guard.
        let exec_mask = match instr.guard {
            None => mask,
            Some(g) => {
                let mut m = 0u32;
                for lane in 0..lanes {
                    if mask & (1 << lane) != 0 {
                        let p = state.preds[g.reg.index() as usize][lane];
                        if p != g.negated {
                            m |= 1 << lane;
                        }
                    }
                }
                m
            }
        };

        plan.resolve_into(instr);
        for s in sinks.iter_mut() {
            s.on_instr(&InstrEvent {
                warp: ctx.warp,
                at,
                instr,
                active_mask: mask,
                exec_mask,
                plan: &plan,
            });
        }
        report.warp_instructions += 1;
        report.thread_instructions += exec_mask.count_ones() as u64;

        // Read-operand fills deposit the MRF value into the ORF. The fill
        // is a side effect of operand *fetch*: its value is captured here,
        // before the instruction executes, and deposited after — with the
        // instruction's own writeback winning on a same-entry collision —
        // exactly as the placement validator models it (reads see the
        // pre-fill state; fills precede the destination write).
        let fills: Vec<(usize, Vec<u32>)> = if matches!(ctx.mode, ExecMode::Hierarchy(_)) {
            instr
                .read_locs
                .iter()
                .enumerate()
                .filter_map(|(slot, loc)| {
                    let e = loc.orf_fill()?;
                    let r = instr.srcs[slot].as_reg()?;
                    Some((e as usize, state.regs[r.index() as usize].clone()))
                })
                .collect()
        } else {
            Vec::new()
        };

        match instr.op {
            Opcode::Bra => {
                let target: Pc = (instr.target.expect("validated").index() as u32, 0);
                let fall = normalize(kernel, (block, index + 1));
                let taken = exec_mask;
                let not_taken = mask & !taken;
                if not_taken == 0 {
                    tok.pc = target;
                } else if taken == 0 {
                    tok.pc = fall;
                } else {
                    let reconv = ipdom
                        .idom(rfh_isa::BlockId::new(block))
                        .map(|b| (b.index() as u32, 0usize));
                    match reconv {
                        Some(r) => {
                            tok.pc = r;
                            let tok_reconv = Some(r);
                            stack.push(Token {
                                pc: fall,
                                mask: not_taken,
                                reconv: tok_reconv,
                            });
                            stack.push(Token {
                                pc: target,
                                mask: taken,
                                reconv: tok_reconv,
                            });
                        }
                        None => {
                            // Paths never rejoin: run each side to exit.
                            tok.mask = 0;
                            stack.push(Token {
                                pc: fall,
                                mask: not_taken,
                                reconv: None,
                            });
                            stack.push(Token {
                                pc: target,
                                mask: taken,
                                reconv: None,
                            });
                        }
                    }
                }
                continue;
            }
            Opcode::Exit => {
                run.exited |= exec_mask;
                if instr.guard.is_none() {
                    stack.pop();
                } else {
                    tok.pc = normalize(kernel, (block, index + 1));
                }
                continue;
            }
            Opcode::Bar => {
                // Yield to the CTA scheduler: every warp of the CTA reaches
                // this barrier before any proceeds past it.
                if matches!(ctx.mode, ExecMode::Hierarchy(_)) && instr.ends_strand {
                    state.poison_upper();
                }
                tok.pc = normalize(kernel, (block, index + 1));
                return Ok(Phase::Barrier);
            }
            Opcode::St(space) => {
                for lane in 0..lanes {
                    if exec_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let addr = ctx.read_operand(state, instr, 0, lane);
                    let value = ctx.read_operand(state, instr, 1, lane);
                    let ok = match space {
                        Space::Global => memory.store(addr, value),
                        Space::Shared => shared.store(addr, value),
                        Space::Local => {
                            // Local memory is modeled as a private slice of
                            // global memory addressed by (thread, addr);
                            // workloads use small offsets.
                            memory.store(addr, value)
                        }
                        Space::Param => false,
                    };
                    if !ok {
                        return Err(ExecError::OutOfBounds {
                            space: space.mnemonic(),
                            addr,
                            at,
                        });
                    }
                }
            }
            Opcode::Ld(space) => {
                let wide = instr.dst.map(|d| d.width == Width::W64).unwrap_or(false);
                for lane in 0..lanes {
                    if exec_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let addr = ctx.read_operand(state, instr, 0, lane);
                    let load_one = |a: u32| -> Result<u32, ExecError> {
                        let v = match space {
                            Space::Global | Space::Local => memory.load(a),
                            Space::Shared => shared.load(a),
                            Space::Param => ctx.launch.params.get(a as usize).copied(),
                        };
                        v.ok_or(ExecError::OutOfBounds {
                            space: space.mnemonic(),
                            addr: a,
                            at,
                        })
                    };
                    let lo = load_one(addr)?;
                    let hi = if wide {
                        load_one(addr.wrapping_add(1))?
                    } else {
                        0
                    };
                    ctx.write_dst(state, instr, lane, lo, hi);
                }
            }
            Opcode::Tex => {
                for lane in 0..lanes {
                    if exec_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let coord = ctx.read_operand(state, instr, 0, lane);
                    let v = memory.load(coord).ok_or(ExecError::OutOfBounds {
                        space: "texture",
                        addr: coord,
                        at,
                    })?;
                    ctx.write_dst(state, instr, lane, v, 0);
                }
            }
            Opcode::Setp(cmp) | Opcode::FSetp(cmp) => {
                let float = matches!(instr.op, Opcode::FSetp(_));
                let p = instr.pdst.expect("validated").index() as usize;
                for lane in 0..lanes {
                    if exec_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let a = ctx.read_operand(state, instr, 0, lane);
                    let b = ctx.read_operand(state, instr, 1, lane);
                    state.preds[p][lane] = eval_cmp(cmp, float, a, b);
                }
            }
            Opcode::Sel => {
                let p = instr.psrc.expect("validated").index() as usize;
                for lane in 0..lanes {
                    if exec_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let a = ctx.read_operand(state, instr, 0, lane);
                    let b = ctx.read_operand(state, instr, 1, lane);
                    let v = if state.preds[p][lane] { a } else { b };
                    ctx.write_dst(state, instr, lane, v, 0);
                }
            }
            _ => {
                if instr.dst.map(|d| d.width == Width::W64).unwrap_or(false) {
                    return Err(ExecError::Unsupported {
                        what: format!("64-bit destination on `{instr}`"),
                        at,
                    });
                }
                for lane in 0..lanes {
                    if exec_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let a = ctx.read_operand(state, instr, 0, lane);
                    let b = if instr.srcs.len() > 1 {
                        ctx.read_operand(state, instr, 1, lane)
                    } else {
                        0
                    };
                    let c = if instr.srcs.len() > 2 {
                        ctx.read_operand(state, instr, 2, lane)
                    } else {
                        0
                    };
                    let v = eval_alu(instr.op, a, b, c).ok_or_else(|| ExecError::Unsupported {
                        what: format!("`{}` has no ALU semantics", instr.op),
                        at,
                    })?;
                    ctx.write_dst(state, instr, lane, v, 0);
                }
            }
        }

        // Deposit the operand-fetch fills captured above. The instruction's
        // own ORF writeback wins on a same-entry collision, so a fill is
        // skipped for lanes where the destination write targeted the entry.
        if !fills.is_empty() {
            let written: Option<(usize, usize)> = match (instr.write_loc, instr.dst) {
                (WriteLoc::Orf { entry, .. }, Some(d)) => {
                    Some((entry as usize, d.width.regs() as usize))
                }
                _ => None,
            };
            for (e, vals) in &fills {
                let dst_covers =
                    written.is_some_and(|(base, width)| *e >= base && *e < base + width);
                for (lane, v) in vals.iter().enumerate().take(lanes) {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    if dst_covers && exec_mask & (1 << lane) != 0 {
                        continue;
                    }
                    state.orf[*e][lane] = *v;
                }
            }
        }

        // Strand boundaries invalidate the upper levels.
        if matches!(ctx.mode, ExecMode::Hierarchy(_)) && instr.ends_strand {
            state.poison_upper();
        }

        tok.pc = normalize(kernel, (block, index + 1));
    }
    Ok(Phase::Done)
}
