//! Cycle-level timing model of the two-level warp scheduler.
//!
//! The paper's performance claim (§6): with 8 active warps out of 32
//! resident, the two-level scheduler loses no performance relative to a
//! scheduler that considers all warps, because the active set hides short
//! (ALU/shared-memory) latencies while descheduling hides long (DRAM/
//! texture) latencies.
//!
//! The model is trace driven: a [`TraceCapture`] sink records each warp's
//! dynamic instruction stream (latency class, operands, unit); the
//! scheduler then replays all warps with:
//!
//! * single-issue in-order issue per cycle across active warps
//!   (round-robin);
//! * per-warp register scoreboards;
//! * shared-datapath units (SFU/MEM/TEX) issuing at quarter throughput;
//! * descheduling on dependences on in-flight long-latency results, and at
//!   barriers (warps wait off the active set);
//! * idle-cycle fast-forwarding, so long DRAM stalls cost simulation time
//!   proportional to events, not cycles.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use rfh_isa::Unit;

use crate::machine::MachineConfig;
use crate::sink::{InstrEvent, TraceSink};

/// Default cycle budget for a timing simulation ([`TimingConfig::max_cycles`]).
///
/// Far above any real workload in this repo (the full paper sweep stays
/// under ten million cycles) while still bounding a runaway simulation to
/// seconds of wall time thanks to idle-cycle fast-forwarding.
pub const DEFAULT_MAX_CYCLES: u64 = 1_000_000_000;

/// An error from the timing model: the simulation could not run to
/// completion. Both cases indicate malformed input traces, not a scheduler
/// bug — and both are returned instead of hanging or panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingError {
    /// No active work and no pending events, but warps remain unretired —
    /// typically a barrier mismatch (some warps of a CTA never arrive).
    Deadlock {
        /// The cycle at which the scheduler ran dry.
        cycle: u64,
    },
    /// The simulation exceeded [`TimingConfig::max_cycles`].
    CycleBudget {
        /// The configured budget that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::Deadlock { cycle } => write!(
                f,
                "scheduler deadlock at cycle {cycle}: no active work and no \
                 pending events (barrier mismatch?)"
            ),
            TimingError::CycleBudget { limit } => {
                write!(f, "timing simulation exceeded the {limit}-cycle budget")
            }
        }
    }
}

impl Error for TimingError {}

/// One dynamic instruction in a warp's trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceOp {
    /// Result latency in cycles.
    pub latency: u64,
    /// Executing unit.
    pub unit: Unit,
    /// Whether this is a long-latency (DRAM/texture) operation.
    pub long: bool,
    /// Whether this is a barrier.
    pub barrier: bool,
    /// Destination registers (64-bit values use both slots).
    pub dsts: [Option<u16>; 2],
    /// Source registers.
    pub srcs: [Option<u16>; 3],
}

/// Captures per-warp dynamic traces from the functional executor.
#[derive(Debug)]
pub struct TraceCapture {
    machine: MachineConfig,
    warps_per_cta: usize,
    /// Dynamic instruction stream per warp.
    pub traces: Vec<Vec<TraceOp>>,
}

impl TraceCapture {
    /// Creates a capture sized for a launch of `ctas × threads_per_cta`.
    pub fn new(machine: MachineConfig, threads_per_cta: usize) -> Self {
        let warps_per_cta = threads_per_cta.div_ceil(machine.warp_width);
        TraceCapture {
            machine,
            warps_per_cta,
            traces: Vec::new(),
        }
    }

    /// The CTA index of a warp.
    pub fn cta_of(&self, warp: usize) -> usize {
        warp / self.warps_per_cta
    }

    /// Warps per CTA in the captured launch.
    pub fn warps_per_cta(&self) -> usize {
        self.warps_per_cta
    }
}

impl TraceSink for TraceCapture {
    fn on_instr(&mut self, event: &InstrEvent<'_>) {
        if self.traces.len() <= event.warp {
            self.traces.resize_with(event.warp + 1, Vec::new);
        }
        let instr = event.instr;
        let mut dsts = [None, None];
        for (i, r) in instr.def_regs().enumerate().take(2) {
            dsts[i] = Some(r.index());
        }
        let mut srcs = [None, None, None];
        for (i, (_, r)) in instr.reg_srcs().enumerate().take(3) {
            srcs[i] = Some(r.index());
        }
        self.traces[event.warp].push(TraceOp {
            latency: self.machine.latency(instr.op),
            unit: instr.op.unit(),
            long: instr.op.is_long_latency(),
            barrier: instr.op.is_barrier(),
            dsts,
            srcs,
        });
    }
}

/// Warp selection policy among schedulable warps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Rotate the starting point after every issue (fair; the default).
    #[default]
    RoundRobin,
    /// Always prefer the lowest-numbered ready warp (greedy/oldest-first;
    /// tends to run a few warps far ahead of the rest).
    Greedy,
}

/// Timing simulation configuration.
#[derive(Debug, Clone)]
pub struct TimingConfig {
    /// The machine parameters.
    pub machine: MachineConfig,
    /// Active warps (the two-level scheduler's upper set size).
    pub active_warps: usize,
    /// `false` simulates the single-level baseline scheduler, which keeps
    /// every resident warp schedulable.
    pub two_level: bool,
    /// Warp selection policy.
    pub policy: SchedPolicy,
    /// Cycle budget: the simulation aborts with
    /// [`TimingError::CycleBudget`] once `now` exceeds this. Defaults to
    /// [`DEFAULT_MAX_CYCLES`].
    pub max_cycles: u64,
}

impl TimingConfig {
    /// The paper's two-level scheduler with `active` warps.
    pub fn two_level(active: usize) -> Self {
        TimingConfig {
            machine: MachineConfig::paper(),
            active_warps: active,
            two_level: true,
            policy: SchedPolicy::RoundRobin,
            max_cycles: DEFAULT_MAX_CYCLES,
        }
    }

    /// The single-level baseline (all resident warps schedulable).
    pub fn single_level() -> Self {
        TimingConfig {
            machine: MachineConfig::paper(),
            active_warps: usize::MAX,
            two_level: false,
            policy: SchedPolicy::RoundRobin,
            max_cycles: DEFAULT_MAX_CYCLES,
        }
    }

    /// Selects a warp selection policy.
    pub fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the cycle budget.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }
}

/// Result of a timing simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingResult {
    /// Total cycles to drain every warp.
    pub cycles: u64,
    /// Warp instructions issued.
    pub instructions: u64,
    /// Deschedule events (two-level only).
    pub deschedules: u64,
}

impl TimingResult {
    /// Warp instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Active,
    Pending { resume: u64 },
    AtBarrier,
    Done,
}

struct WarpSim {
    next: usize,
    status: Status,
    reg_ready: Vec<u64>,
    long_regs: HashSet<u16>,
}

/// Replays captured traces through the two-level scheduler.
///
/// `cta_of` maps warp index → CTA (for barrier scoping); use
/// [`TraceCapture::cta_of`].
///
/// # Errors
///
/// Returns [`TimingError::Deadlock`] on a barrier deadlock (a CTA whose
/// warps cannot all reach the barrier — a malformed trace set), and
/// [`TimingError::CycleBudget`] when the simulation exceeds
/// [`TimingConfig::max_cycles`]. It never hangs: every loop iteration
/// either advances `now` or retires work, and `now` is bounded by the
/// budget.
pub fn simulate_timing(
    traces: &[Vec<TraceOp>],
    cta_of: &dyn Fn(usize) -> usize,
    config: &TimingConfig,
) -> Result<TimingResult, TimingError> {
    let n = traces.len();
    let max_reg = traces
        .iter()
        .flatten()
        .flat_map(|op| op.dsts.iter().chain(op.srcs.iter()).flatten())
        .copied()
        .max()
        .unwrap_or(0) as usize
        + 1;
    let mut warps: Vec<WarpSim> = (0..n)
        .map(|wi| WarpSim {
            next: 0,
            // A warp with an empty trace has nothing to retire; starting it
            // Done keeps the issue loop free of empty-slice indexing.
            status: if traces[wi].is_empty() {
                Status::Done
            } else {
                Status::Pending { resume: 0 }
            },
            reg_ready: vec![0; max_reg],
            long_regs: HashSet::new(),
        })
        .collect();
    let slots = if config.two_level {
        config.active_warps.min(n)
    } else {
        n
    };
    // Barrier bookkeeping: arrived counts per CTA.
    let n_ctas = (0..n).map(cta_of).max().map(|c| c + 1).unwrap_or(0);
    let mut barrier_arrived = vec![0usize; n_ctas];

    let mut now: u64 = 0;
    let mut instructions: u64 = 0;
    let mut deschedules: u64 = 0;
    let mut rr: usize = 0;

    // Activate initial warps.
    let mut active: Vec<usize> = Vec::new();
    let activate = |warps: &mut Vec<WarpSim>, active: &mut Vec<usize>, now: u64| {
        while active.len() < slots {
            let candidate = warps
                .iter()
                .enumerate()
                .filter(|(_, w)| matches!(w.status, Status::Pending { resume } if resume <= now))
                .map(|(i, _)| i)
                .next();
            match candidate {
                Some(i) => {
                    warps[i].status = Status::Active;
                    active.push(i);
                }
                None => break,
            }
        }
    };
    activate(&mut warps, &mut active, now);

    let mut sfu_free: u64 = 0;
    let mut mem_free: u64 = 0;
    let mut tex_free: u64 = 0;

    loop {
        if warps.iter().all(|w| w.status == Status::Done) {
            break;
        }
        if now > config.max_cycles {
            return Err(TimingError::CycleBudget {
                limit: config.max_cycles,
            });
        }
        let mut issued = false;
        let mut release_cta: Option<usize> = None;
        let mut to_deschedule: Option<(usize, u64)> = None;

        for k in 0..active.len() {
            let wi = active[(rr + k) % active.len()];
            let trace = &traces[wi];
            let w = &warps[wi];
            debug_assert_eq!(w.status, Status::Active);
            let op = &trace[w.next];

            // Operand readiness.
            let ready_at = op
                .srcs
                .iter()
                .flatten()
                .map(|r| w.reg_ready[*r as usize])
                .max()
                .unwrap_or(0);
            if ready_at > now {
                let blocked_on_long = op
                    .srcs
                    .iter()
                    .flatten()
                    .any(|r| w.reg_ready[*r as usize] > now && w.long_regs.contains(r));
                if config.two_level && blocked_on_long {
                    to_deschedule = Some((wi, ready_at));
                    break;
                }
                continue; // short stall: wait in place
            }
            // Unit availability.
            let unit_free = match op.unit {
                Unit::Sfu => sfu_free,
                Unit::Mem => mem_free,
                Unit::Tex => tex_free,
                _ => 0,
            };
            if unit_free > now {
                continue;
            }

            // ---- issue ----
            let op = *op;
            let w = &mut warps[wi];
            for r in op.srcs.iter().flatten() {
                if w.reg_ready[*r as usize] <= now {
                    w.long_regs.remove(r);
                }
            }
            for d in op.dsts.iter().flatten() {
                w.reg_ready[*d as usize] = now + op.latency;
                if op.long {
                    w.long_regs.insert(*d);
                } else {
                    w.long_regs.remove(d);
                }
            }
            match op.unit {
                Unit::Sfu => sfu_free = now + config.machine.shared_issue_cycles,
                Unit::Mem => mem_free = now + config.machine.shared_issue_cycles,
                Unit::Tex => tex_free = now + config.machine.shared_issue_cycles,
                _ => {}
            }
            w.next += 1;
            instructions += 1;
            issued = true;
            rr = match config.policy {
                SchedPolicy::RoundRobin => (rr + k + 1) % active.len().max(1),
                SchedPolicy::Greedy => 0,
            };

            if w.next == trace.len() {
                w.status = Status::Done;
                active.retain(|&a| a != wi);
            } else if op.barrier {
                let cta = cta_of(wi);
                w.status = Status::AtBarrier;
                active.retain(|&a| a != wi);
                barrier_arrived[cta] += 1;
                let expected = (0..n)
                    .filter(|&x| cta_of(x) == cta && warps[x].status != Status::Done)
                    .count();
                if barrier_arrived[cta] >= expected {
                    release_cta = Some(cta);
                }
            }
            break;
        }

        if let Some((wi, resume)) = to_deschedule {
            deschedules += 1;
            warps[wi].status = Status::Pending { resume };
            active.retain(|&a| a != wi);
        }
        if let Some(cta) = release_cta {
            barrier_arrived[cta] = 0;
            for (x, w) in warps.iter_mut().enumerate() {
                if cta_of(x) == cta && w.status == Status::AtBarrier {
                    w.status = Status::Pending { resume: now };
                }
            }
        }
        activate(&mut warps, &mut active, now);

        if issued || to_deschedule.is_some() || release_cta.is_some() {
            now += 1;
            continue;
        }
        // Nothing happened: fast-forward to the next event.
        let mut next_event = u64::MAX;
        for wi in &active {
            let w = &warps[*wi];
            let op = &traces[*wi][w.next];
            let ready = op
                .srcs
                .iter()
                .flatten()
                .map(|r| w.reg_ready[*r as usize])
                .max()
                .unwrap_or(0);
            let unit = match op.unit {
                Unit::Sfu => sfu_free,
                Unit::Mem => mem_free,
                Unit::Tex => tex_free,
                _ => 0,
            };
            next_event = next_event.min(ready.max(unit).max(now + 1));
        }
        for w in &warps {
            if let Status::Pending { resume } = w.status {
                next_event = next_event.min(resume.max(now + 1));
            }
        }
        if next_event == u64::MAX {
            return Err(TimingError::Deadlock { cycle: now });
        }
        now = next_event;
        activate(&mut warps, &mut active, now);
    }

    Ok(TimingResult {
        cycles: now,
        instructions,
        deschedules,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_with, ExecMode, Launch};
    use crate::mem::GlobalMemory;

    fn capture(text: &str, ctas: usize, tpc: usize, mem_words: usize) -> TraceCapture {
        let kernel = rfh_isa::parse_kernel(text).unwrap();
        let machine = MachineConfig::paper();
        let mut cap = TraceCapture::new(machine.clone(), tpc);
        let mut mem = GlobalMemory::new(mem_words);
        execute_with(
            &kernel,
            &Launch::new(ctas, tpc),
            &mut mem,
            ExecMode::Baseline,
            &machine,
            &mut [&mut cap],
        )
        .unwrap();
        cap
    }

    const ALU_HEAVY: &str = "
.kernel alu
BB0:
  mov r0, %tid.x
  mov r1, 0
  mov r2, 0
BB1:
  iadd r1 r1, 1
  imad r2 r1, r1, r2
  iadd r2 r2, 3
  xor r2 r2, r1
  setp.lt p0 r1, 64
  @p0 bra BB1
BB2:
  st.global r0, r2
  exit
";

    const MEM_HEAVY: &str = "
.kernel memh
BB0:
  mov r0, %tid.x
  mov r3, 0
  mov r4, 0
BB1:
  iadd r1 r0, r3
  ld.global r2 r1
  iadd r4 r4, r2
  iadd r3 r3, 32
  setp.lt p0 r3, 512
  @p0 bra BB1
BB2:
  st.global r0, r4
  exit
";

    #[test]
    fn single_warp_alu_ipc_is_latency_bound() {
        let cap = capture(ALU_HEAVY, 1, 32, 64);
        let r = simulate_timing(
            &cap.traces,
            &|w| cap.cta_of(w),
            &TimingConfig::single_level(),
        )
        .unwrap();
        // One warp with serial dependences cannot reach IPC 1.
        assert!(r.ipc() < 0.7, "ipc = {}", r.ipc());
    }

    #[test]
    fn many_warps_hide_alu_latency() {
        let cap = capture(ALU_HEAVY, 8, 128, 2048);
        assert_eq!(cap.traces.len(), 32);
        let r = simulate_timing(
            &cap.traces,
            &|w| cap.cta_of(w),
            &TimingConfig::single_level(),
        )
        .unwrap();
        assert!(
            r.ipc() > 0.9,
            "32 warps should saturate issue, ipc = {}",
            r.ipc()
        );
    }

    #[test]
    fn two_level_with_8_matches_single_level() {
        // The paper's claim: no performance penalty with 8 active warps.
        for text in [ALU_HEAVY, MEM_HEAVY] {
            let cap = capture(text, 8, 128, 4096);
            let base = simulate_timing(
                &cap.traces,
                &|w| cap.cta_of(w),
                &TimingConfig::single_level(),
            )
            .unwrap();
            let two = simulate_timing(&cap.traces, &|w| cap.cta_of(w), &TimingConfig::two_level(8))
                .unwrap();
            let slowdown = two.cycles as f64 / base.cycles as f64;
            assert!(slowdown < 1.05, "two-level slowdown {slowdown} on {text}");
        }
    }

    #[test]
    fn too_few_active_warps_hurt_memory_workloads() {
        let cap = capture(MEM_HEAVY, 8, 128, 4096);
        let base = simulate_timing(
            &cap.traces,
            &|w| cap.cta_of(w),
            &TimingConfig::single_level(),
        )
        .unwrap();
        let tiny =
            simulate_timing(&cap.traces, &|w| cap.cta_of(w), &TimingConfig::two_level(1)).unwrap();
        assert!(
            tiny.cycles as f64 > base.cycles as f64 * 1.3,
            "1 active warp cannot hide latency: {} vs {}",
            tiny.cycles,
            base.cycles
        );
    }

    #[test]
    fn descheduling_happens_on_long_latency() {
        let cap = capture(MEM_HEAVY, 8, 128, 4096);
        let two =
            simulate_timing(&cap.traces, &|w| cap.cta_of(w), &TimingConfig::two_level(8)).unwrap();
        assert!(two.deschedules > 0);
    }

    #[test]
    fn barriers_synchronize_ctas() {
        let text = "
.kernel b
BB0:
  mov r0, %tid.x
  st.shared r0, r0
  bar
  iadd r1 r0, 1
  ld.shared r2 r1
  st.global r0, r2
  exit
";
        // 2 CTAs of 64 threads: barriers must not deadlock across CTAs.
        let cap = capture(text, 2, 64, 256);
        let r =
            simulate_timing(&cap.traces, &|w| cap.cta_of(w), &TimingConfig::two_level(2)).unwrap();
        assert!(r.cycles > 0);
        assert_eq!(
            r.instructions,
            cap.traces.iter().map(|t| t.len() as u64).sum::<u64>()
        );
    }

    fn alu_op(dst: u16, src: u16) -> TraceOp {
        TraceOp {
            latency: 8,
            unit: Unit::Alu,
            long: false,
            barrier: false,
            dsts: [Some(dst), None],
            srcs: [Some(src), None, None],
        }
    }

    fn bar_op() -> TraceOp {
        TraceOp {
            latency: 1,
            unit: Unit::Alu,
            long: false,
            barrier: true,
            dsts: [None, None],
            srcs: [None, None, None],
        }
    }

    #[test]
    fn barrier_mismatch_is_a_deadlock_error_not_a_hang() {
        // Warp 0 waits at a mid-trace barrier that warp 1 (same CTA)
        // never reaches — warp 1 retires without arriving, so warp 0 can
        // never be released.
        let traces = vec![vec![bar_op(), alu_op(0, 0)], vec![alu_op(1, 1)]];
        let err = simulate_timing(&traces, &|_| 0, &TimingConfig::two_level(8)).unwrap_err();
        assert!(matches!(err, TimingError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn mismatched_barrier_counts_are_a_deadlock_error() {
        // Warp 1 executes two barriers but warp 0 only one: warp 1's second
        // arrival can never be matched once warp 0 retires.
        let traces = vec![
            vec![bar_op(), alu_op(0, 0), alu_op(0, 0)],
            vec![bar_op(), bar_op(), alu_op(1, 1)],
        ];
        let err = simulate_timing(&traces, &|_| 0, &TimingConfig::two_level(8)).unwrap_err();
        assert!(matches!(err, TimingError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn cycle_budget_bounds_the_simulation() {
        // A 100-op dependent chain at 8 cycles/op needs ~800 cycles; a
        // 50-cycle budget must trip first.
        let chain: Vec<TraceOp> = (0..100).map(|_| alu_op(0, 0)).collect();
        let cfg = TimingConfig::single_level().with_max_cycles(50);
        let err = simulate_timing(std::slice::from_ref(&chain), &|_| 0, &cfg).unwrap_err();
        assert_eq!(err, TimingError::CycleBudget { limit: 50 });
        // With the default budget the same trace completes.
        let ok = simulate_timing(&[chain], &|_| 0, &TimingConfig::single_level()).unwrap();
        assert!(ok.cycles > 50);
    }

    #[test]
    fn cycle_budget_default_is_pinned() {
        // Regression pin: changing the default budget changes which
        // workloads are reported as runaway; do it deliberately.
        assert_eq!(DEFAULT_MAX_CYCLES, 1_000_000_000);
        assert_eq!(TimingConfig::two_level(8).max_cycles, DEFAULT_MAX_CYCLES);
        assert_eq!(TimingConfig::single_level().max_cycles, DEFAULT_MAX_CYCLES);
    }

    #[test]
    fn empty_traces_complete_immediately() {
        let traces: Vec<Vec<TraceOp>> = vec![Vec::new(), Vec::new()];
        let r = simulate_timing(&traces, &|_| 0, &TimingConfig::two_level(2)).unwrap();
        assert_eq!(r.instructions, 0);
    }

    #[test]
    fn instruction_counts_are_conserved() {
        let cap = capture(ALU_HEAVY, 2, 64, 128);
        let total: u64 = cap.traces.iter().map(|t| t.len() as u64).sum();
        for cfg in [TimingConfig::single_level(), TimingConfig::two_level(4)] {
            let r = simulate_timing(&cap.traces, &|w| cap.cta_of(w), &cfg).unwrap();
            assert_eq!(r.instructions, total);
        }
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::exec::{execute, ExecMode, Launch};
    use crate::mem::GlobalMemory;

    #[test]
    fn greedy_policy_is_never_faster_on_balanced_work() {
        let kernel = rfh_isa::parse_kernel(
            "
.kernel bal
BB0:
  mov r0, %tid.x
  mov r1, 0
  mov r2, 0
BB1:
  iadd r1 r1, 1
  imad r2 r1, r1, r2
  setp.lt p0 r1, 32
  @p0 bra BB1
BB2:
  st.global r0, r2
  exit
",
        )
        .unwrap();
        let machine = MachineConfig::paper();
        let mut cap = TraceCapture::new(machine, 128);
        let mut mem = GlobalMemory::new(1024);
        execute(
            &kernel,
            &Launch::new(4, 128),
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut cap],
        )
        .unwrap();
        let rr =
            simulate_timing(&cap.traces, &|w| cap.cta_of(w), &TimingConfig::two_level(8)).unwrap();
        let greedy = simulate_timing(
            &cap.traces,
            &|w| cap.cta_of(w),
            &TimingConfig::two_level(8).with_policy(SchedPolicy::Greedy),
        )
        .unwrap();
        assert_eq!(rr.instructions, greedy.instructions);
        assert!(
            greedy.cycles as f64 >= rr.cycles as f64 * 0.95,
            "greedy {} vs round-robin {}",
            greedy.cycles,
            rr.cycles
        );
    }
}
