//! Access counting for software-managed hierarchies.

use rfh_energy::AccessCounts;

use crate::sink::{InstrEvent, TraceSink};

/// Tallies register file hierarchy accesses of an annotated kernel.
///
/// Every executed instruction arrives with its resolved
/// [`AccessPlan`](rfh_isa::AccessPlan) —
/// reads at the level each `ReadLoc` names, the ORF deposit of
/// read-operand fills (§4.4), and per-word destination writes (64-bit
/// values cost two accesses at each level written) — and is folded into
/// [`AccessCounts`], which splits ORF traffic by datapath for wire
/// energy.
#[derive(Debug, Default, Clone)]
pub struct SwCounter {
    counts: AccessCounts,
}

impl SwCounter {
    /// The accumulated counts.
    pub fn counts(&self) -> AccessCounts {
        self.counts
    }
}

impl TraceSink for SwCounter {
    fn on_instr(&mut self, event: &InstrEvent<'_>) {
        self.counts.record_plan(event.plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecMode, Launch};
    use crate::mem::GlobalMemory;
    use rfh_alloc::AllocConfig;
    use rfh_energy::EnergyModel;

    fn count(text: &str, config: Option<AllocConfig>) -> AccessCounts {
        let mut kernel = rfh_isa::parse_kernel(text).unwrap();
        let mode = match config {
            Some(cfg) => {
                rfh_alloc::allocate(&mut kernel, &cfg, &EnergyModel::paper()).unwrap();
                ExecMode::Hierarchy(cfg)
            }
            None => ExecMode::Baseline,
        };
        let mut mem = GlobalMemory::new(4096);
        let mut counter = SwCounter::default();
        execute(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            mode,
            &mut [&mut counter],
        )
        .unwrap();
        counter.counts()
    }

    const CHAIN: &str = "
.kernel chain
BB0:
  mov r0, %tid.x
  iadd r1 r0, 1
  iadd r2 r1, 1
  st.global r0, r2
  exit
";

    #[test]
    fn baseline_counts_every_operand() {
        let c = count(CHAIN, None);
        // Reads: iadd(r0), iadd(r1), st(r0, r2) = 4 per warp.
        assert_eq!(c.mrf_read, 4);
        // Writes: mov, iadd, iadd = 3.
        assert_eq!(c.mrf_write, 3);
        assert_eq!(c.total_reads(), 4);
        assert_eq!(c.orf_read_private + c.lrf_read, 0);
    }

    #[test]
    fn allocated_kernel_moves_traffic_up() {
        let c = count(CHAIN, Some(AllocConfig::two_level(3)));
        assert!(c.orf_read_private + c.orf_read_shared > 0);
        assert!(c.mrf_read < 4);
        // Total read traffic is conserved (no writeback reads in SW).
        assert_eq!(c.total_reads(), 4);
        // Dying values never touch the MRF.
        assert!(c.mrf_write < 3);
    }

    #[test]
    fn shared_consumer_reads_counted_separately() {
        let c = count(
            "
.kernel sh
BB0:
  mov r0, %tid.x
  iadd r1 r0, 64
  ld.shared r2 r1
  st.global r0, r2
  exit
",
            Some(AllocConfig::two_level(3)),
        );
        assert!(
            c.orf_read_shared > 0,
            "the load consumes r1 on the shared datapath"
        );
    }

    #[test]
    fn fill_counts_read_and_write() {
        // r0 live-in, read 4 times in the second strand.
        let text = "
.kernel f
BB0:
  mov r0, %tid.x
  ld.global r9 r0
  iadd r1 r9, r0
  iadd r2 r1, r0
  iadd r3 r2, r0
  iadd r4 r3, r0
  st.global r0, r4
  exit
";
        let c = count(text, Some(AllocConfig::two_level(3)));
        let base = count(text, None);
        assert!(c.orf_read_private >= 3, "later reads of r0 served by ORF");
        // The fill shows up as one extra ORF write relative to the pure
        // write-allocation traffic, while total reads are conserved.
        assert_eq!(c.total_reads(), base.total_reads());
    }

    #[test]
    fn wide_writes_cost_two_accesses() {
        let c = count(
            "
.kernel w
BB0:
  mov r0, %tid.x
  ld.shared r4.w64 r0
  iadd r6 r4, r5
  st.global r0, r6
  exit
",
            None,
        );
        // mov(1) + wide ld(2) + iadd(1) = 4 write accesses.
        assert_eq!(c.mrf_write, 4);
    }
}

/// Per-strand access counting: like [`SwCounter`] but attributing every
/// access to the strand of its instruction (for the §7 variable-ORF
/// oracle, which sizes each strand's ORF independently).
#[derive(Debug, Clone)]
pub struct StrandCounter {
    map: Vec<Vec<u32>>,
    counts: Vec<AccessCounts>,
}

impl StrandCounter {
    /// Builds a counter from a kernel whose `ends_strand` bits are set.
    pub fn new(kernel: &rfh_isa::Kernel) -> Self {
        let map = rfh_analysis::strand::segment_ids(kernel);
        let strands = rfh_analysis::strand::segment_count(kernel).max(1);
        StrandCounter {
            map,
            counts: vec![AccessCounts::default(); strands],
        }
    }

    /// Per-strand counts, indexed by strand.
    pub fn per_strand(&self) -> &[AccessCounts] {
        &self.counts
    }

    /// Sum over all strands (equals what [`SwCounter`] would report).
    pub fn total(&self) -> AccessCounts {
        self.counts
            .iter()
            .fold(AccessCounts::default(), |a, b| a + *b)
    }
}

impl TraceSink for StrandCounter {
    fn on_instr(&mut self, event: &InstrEvent<'_>) {
        let sid = self.map[event.at.block.index()][event.at.index] as usize;
        self.counts[sid].record_plan(event.plan);
    }
}
