//! Per-strand energy attribution.
//!
//! [`SwCounter`](crate::counts::SwCounter) answers *how much* hierarchy
//! traffic a kernel generates; this profiler answers *where it comes
//! from*: every resolved access is attributed to the strand of its
//! instruction and priced through the [`EnergyModel`], yielding a
//! deterministic table of per-strand access counts, energy, and share of
//! the kernel total. Strands are the paper's allocation unit (§4.2), so
//! this is the natural granularity for asking "which piece of the kernel
//! pays for the MRF".

use rfh_energy::{AccessCounts, EnergyBreakdown, EnergyModel};
use rfh_isa::{InstrRef, Kernel};

use crate::sink::{InstrEvent, TraceSink};

/// Accumulated traffic of one strand.
#[derive(Debug, Clone)]
pub struct StrandProfile {
    /// The strand's first instruction (its label in reports).
    pub start: InstrRef,
    /// Warp instructions executed from this strand.
    pub instrs: u64,
    /// Register-file accesses attributed to this strand.
    pub counts: AccessCounts,
}

/// A [`TraceSink`] that buckets every register-file access by the strand
/// of its instruction and prices the buckets through an [`EnergyModel`].
#[derive(Debug, Clone)]
pub struct EnergyProfiler {
    map: Vec<Vec<u32>>,
    strands: Vec<StrandProfile>,
    model: EnergyModel,
    orf_entries: usize,
}

impl EnergyProfiler {
    /// Builds a profiler for a kernel whose `ends_strand` bits are set
    /// (an unallocated kernel is one big strand). `orf_entries` sizes the
    /// ORF for pricing and is clamped into the model's 1–8 entry table.
    pub fn new(kernel: &Kernel, model: EnergyModel, orf_entries: usize) -> Self {
        let map = rfh_analysis::strand::segment_ids(kernel);
        let n = rfh_analysis::strand::segment_count(kernel).max(1);
        let mut starts: Vec<Option<InstrRef>> = vec![None; n];
        for (at, _) in kernel.iter_instrs() {
            let sid = map[at.block.index()][at.index] as usize;
            if starts[sid].is_none() {
                starts[sid] = Some(at);
            }
        }
        let strands = starts
            .into_iter()
            .map(|start| StrandProfile {
                start: start.unwrap_or(InstrRef {
                    block: rfh_isa::BlockId::new(0),
                    index: 0,
                }),
                instrs: 0,
                counts: AccessCounts::default(),
            })
            .collect();
        EnergyProfiler {
            map,
            strands,
            model,
            orf_entries: orf_entries.clamp(1, 8),
        }
    }

    /// The per-strand profiles, indexed by strand id.
    pub fn per_strand(&self) -> &[StrandProfile] {
        &self.strands
    }

    /// The priced energy of one strand's traffic.
    pub fn energy_of(&self, strand: usize) -> EnergyBreakdown {
        self.model
            .energy(&self.strands[strand].counts, self.orf_entries)
    }

    /// Sum of all strands (equals a [`crate::counts::SwCounter`] over the
    /// same run).
    pub fn total_counts(&self) -> AccessCounts {
        self.strands
            .iter()
            .fold(AccessCounts::default(), |a, s| a + s.counts)
    }

    /// The priced energy of the whole run.
    pub fn total_energy(&self) -> EnergyBreakdown {
        self.model.energy(&self.total_counts(), self.orf_entries)
    }

    /// Renders the deterministic attribution table: one row per strand
    /// (in strand order), then a totals row. Columns are tab-separated so
    /// the output diffs cleanly as a golden artifact.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# per-strand energy attribution (orf_entries={})\n",
            self.orf_entries
        ));
        out.push_str(
            "strand\tstart\tinstrs\tmrf.r\tmrf.w\torf.r\torf.w\tlrf.r\tlrf.w\tenergy_pj\tshare\n",
        );
        let total = self.total_energy().total();
        for (sid, s) in self.strands.iter().enumerate() {
            let e = self.energy_of(sid).total();
            let share = if total > 0.0 { e / total } else { 0.0 };
            let c = &s.counts;
            out.push_str(&format!(
                "{sid}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{e:.3}\t{share:.4}\n",
                s.start,
                s.instrs,
                c.mrf_read,
                c.mrf_write,
                c.orf_read_private + c.orf_read_shared,
                c.orf_write_private + c.orf_write_shared,
                c.lrf_read,
                c.lrf_write,
            ));
        }
        let c = self.total_counts();
        out.push_str(&format!(
            "total\t-\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{total:.3}\t1.0000\n",
            self.strands.iter().map(|s| s.instrs).sum::<u64>(),
            c.mrf_read,
            c.mrf_write,
            c.orf_read_private + c.orf_read_shared,
            c.orf_write_private + c.orf_write_shared,
            c.lrf_read,
            c.lrf_write,
        ));
        out
    }
}

impl TraceSink for EnergyProfiler {
    fn on_instr(&mut self, event: &InstrEvent<'_>) {
        let sid = self.map[event.at.block.index()][event.at.index] as usize;
        let s = &mut self.strands[sid];
        s.instrs += 1;
        s.counts.record_plan(event.plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::SwCounter;
    use crate::exec::{execute, ExecMode, Launch};
    use crate::mem::GlobalMemory;
    use rfh_alloc::AllocConfig;

    const KERNEL: &str = "
.kernel p
BB0:
  mov r0, %tid.x
  ld.global r9 r0
  iadd r1 r9, r0
  iadd r2 r1, r0
  iadd r3 r2, r0
  st.global r0, r3
  exit
";

    fn run(cfg: Option<AllocConfig>) -> (EnergyProfiler, SwCounter) {
        let mut kernel = rfh_isa::parse_kernel(KERNEL).unwrap();
        let (mode, entries) = match cfg {
            Some(cfg) => {
                rfh_alloc::allocate(&mut kernel, &cfg, &EnergyModel::paper()).unwrap();
                let entries = cfg.orf_entries;
                (ExecMode::Hierarchy(cfg), entries)
            }
            None => (ExecMode::Baseline, 1),
        };
        let mut prof = EnergyProfiler::new(&kernel, EnergyModel::paper(), entries);
        let mut sw = SwCounter::default();
        let mut mem = GlobalMemory::new(4096);
        execute(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            mode,
            &mut [&mut prof, &mut sw],
        )
        .unwrap();
        (prof, sw)
    }

    #[test]
    fn strand_totals_match_flat_counter() {
        let (prof, sw) = run(Some(AllocConfig::two_level(3)));
        assert_eq!(prof.total_counts(), sw.counts());
        assert!(prof.per_strand().len() > 1, "allocation split strands");
    }

    #[test]
    fn shares_sum_to_one() {
        let (prof, _) = run(Some(AllocConfig::two_level(3)));
        let total = prof.total_energy().total();
        let sum: f64 = (0..prof.per_strand().len())
            .map(|s| prof.energy_of(s).total())
            .sum();
        assert!((sum - total).abs() < 1e-9);
    }

    #[test]
    fn render_is_stable_and_labeled() {
        let (prof, _) = run(None);
        let a = prof.render();
        let b = prof.render();
        assert_eq!(a, b);
        assert!(a.starts_with("# per-strand energy attribution"));
        assert!(a.contains("BB0[0]"));
        assert!(a.trim_end().ends_with("1.0000"));
    }

    #[test]
    fn zero_orf_config_is_clamped_not_panicking() {
        let kernel = rfh_isa::parse_kernel(KERNEL).unwrap();
        let prof = EnergyProfiler::new(&kernel, EnergyModel::paper(), 0);
        let _ = prof.total_energy();
    }
}
