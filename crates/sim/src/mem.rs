//! Memory spaces: global (DRAM), shared (per CTA), and parameters.

use std::fmt;

/// Word-addressed global memory (also backing texture fetches).
///
/// Addresses are 32-bit word indices, not byte addresses; floating-point
/// data is stored as IEEE-754 bit patterns.
#[derive(Clone, PartialEq, Eq)]
pub struct GlobalMemory {
    words: Vec<u32>,
}

impl GlobalMemory {
    /// Allocates `words` zero-initialized 32-bit words.
    pub fn new(words: usize) -> Self {
        GlobalMemory {
            words: vec![0; words],
        }
    }

    /// Builds memory from f32 data (bit-cast).
    pub fn from_f32(data: &[f32]) -> Self {
        GlobalMemory {
            words: data.iter().map(|v| v.to_bits()).collect(),
        }
    }

    /// Builds memory from raw words.
    pub fn from_words(words: Vec<u32>) -> Self {
        GlobalMemory { words }
    }

    /// Size in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the memory has zero words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Loads the word at `addr`, or `None` when out of bounds.
    pub fn load(&self, addr: u32) -> Option<u32> {
        self.words.get(addr as usize).copied()
    }

    /// Loads the word at `addr` as an f32.
    pub fn load_f32(&self, addr: u32) -> Option<f32> {
        self.load(addr).map(f32::from_bits)
    }

    /// Stores `value` at `addr`; returns false when out of bounds.
    pub fn store(&mut self, addr: u32, value: u32) -> bool {
        match self.words.get_mut(addr as usize) {
            Some(w) => {
                *w = value;
                true
            }
            None => false,
        }
    }

    /// Stores an f32 (bit-cast) at `addr`.
    pub fn store_f32(&mut self, addr: u32, value: f32) -> bool {
        self.store(addr, value.to_bits())
    }

    /// The raw words, for result comparison.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// The contents reinterpreted as f32s.
    pub fn as_f32(&self) -> Vec<f32> {
        self.words.iter().map(|w| f32::from_bits(*w)).collect()
    }
}

impl fmt::Debug for GlobalMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GlobalMemory({} words)", self.words.len())
    }
}

/// Per-CTA software-managed shared memory.
#[derive(Debug, Clone)]
pub struct SharedMemory {
    words: Vec<u32>,
}

impl SharedMemory {
    /// Allocates `words` zero-initialized words.
    pub fn new(words: usize) -> Self {
        SharedMemory {
            words: vec![0; words],
        }
    }

    /// Loads the word at `addr`.
    pub fn load(&self, addr: u32) -> Option<u32> {
        self.words.get(addr as usize).copied()
    }

    /// Stores `value` at `addr`; returns false when out of bounds.
    pub fn store(&mut self, addr: u32, value: u32) -> bool {
        match self.words.get_mut(addr as usize) {
            Some(w) => {
                *w = value;
                true
            }
            None => false,
        }
    }

    /// Size in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the memory has zero words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_round_trip() {
        let mut m = GlobalMemory::new(8);
        assert!(m.store(3, 42));
        assert_eq!(m.load(3), Some(42));
        assert_eq!(m.load(8), None);
        assert!(!m.store(8, 1));
    }

    #[test]
    fn f32_bit_casting() {
        let m = GlobalMemory::from_f32(&[1.5, -2.0]);
        assert_eq!(m.load_f32(0), Some(1.5));
        assert_eq!(m.load_f32(1), Some(-2.0));
        let mut m2 = GlobalMemory::new(1);
        m2.store_f32(0, 0.25);
        assert_eq!(m2.as_f32(), vec![0.25]);
    }

    #[test]
    fn shared_memory_is_bounded() {
        let mut s = SharedMemory::new(4);
        assert!(s.store(0, 7));
        assert_eq!(s.load(0), Some(7));
        assert_eq!(s.load(4), None);
        assert_eq!(s.len(), 4);
    }
}
