//! Structured trace export.
//!
//! The paper's methodology is a custom trace-analysis tool over full
//! program executions (§5.1); this sink makes that trace a first-class,
//! machine-readable artifact instead of something each analysis
//! re-derives privately. Every executed warp instruction is recorded
//! together with its resolved [`RegAccess`] list, and the buffer
//! serializes to either:
//!
//! * **JSON lines** ([`TraceExporter::json_lines`]) — one self-contained
//!   object per event, greppable and diffable (the `rfhc trace --json`
//!   golden format);
//! * **Chrome trace** ([`TraceExporter::chrome_trace`]) — a
//!   `chrome://tracing` / Perfetto-loadable timeline with one track per
//!   warp, where each instruction occupies one timeline unit.
//!
//! Both serializers are hand-rolled (the workspace has no serde) and
//! deterministic: records are kept in global issue order, which the
//! barrier-phased executor makes independent of any parallelism knob.

use rfh_isa::access::RegAccess;
use rfh_isa::{InstrRef, Kernel};

use crate::sink::{InstrEvent, TraceSink};

/// One executed warp instruction, with its resolved accesses.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Global issue sequence number (0-based).
    pub seq: u64,
    /// The issuing warp's global index.
    pub warp: usize,
    /// Position in the kernel.
    pub at: InstrRef,
    /// The instruction's printed form.
    pub op: String,
    /// The strand of the instruction.
    pub strand: u32,
    /// Threads active at issue.
    pub active_mask: u32,
    /// Threads that executed (active ∧ guard).
    pub exec_mask: u32,
    /// The resolved register-file accesses.
    pub accesses: Vec<RegAccess>,
}

/// A [`TraceSink`] that buffers every event for structured export.
#[derive(Debug, Clone)]
pub struct TraceExporter {
    map: Vec<Vec<u32>>,
    records: Vec<TraceRecord>,
}

impl TraceExporter {
    /// Builds an exporter for `kernel` (the strand map labels records).
    pub fn new(kernel: &Kernel) -> Self {
        TraceExporter {
            map: rfh_analysis::strand::segment_ids(kernel),
            records: Vec::new(),
        }
    }

    /// The buffered records, in global issue order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Serializes the trace as JSON lines: one object per record,
    /// newline-terminated, in issue order.
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!(
                "{{\"seq\":{},\"warp\":{},\"at\":\"{}\",\"strand\":{},\"op\":\"{}\",\
                 \"active\":{},\"exec\":{},\"accesses\":[",
                r.seq,
                r.warp,
                r.at,
                r.strand,
                escape(&r.op),
                r.active_mask,
                r.exec_mask,
            ));
            for (i, a) in r.accesses.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"kind\":\"{}\",\"place\":\"{}\",\"datapath\":\"{}\",\
                     \"reg\":\"{}\",\"slot\":\"{}\",\"width\":{}}}",
                    a.kind,
                    a.place,
                    a.datapath,
                    a.reg,
                    a.slot,
                    32 * a.width.regs(),
                ));
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Serializes the trace in the Chrome trace-event format: one `"X"`
    /// (complete) event per record, one track (`tid`) per warp, each
    /// instruction one microsecond wide at its warp-local position.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut warp_ts: Vec<u64> = Vec::new();
        for (i, r) in self.records.iter().enumerate() {
            if r.warp >= warp_ts.len() {
                warp_ts.resize(r.warp + 1, 0);
            }
            let ts = warp_ts[r.warp];
            warp_ts[r.warp] += 1;
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"strand{}\",\"ph\":\"X\",\"ts\":{ts},\
                 \"dur\":1,\"pid\":0,\"tid\":{},\"args\":{{\"at\":\"{}\",\"seq\":{},\
                 \"accesses\":{}}}}}",
                escape(&r.op),
                r.strand,
                r.warp,
                r.at,
                r.seq,
                r.accesses.len(),
            ));
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// One-line human summary (records, warps, accesses).
    pub fn summary(&self) -> String {
        let warps = self.records.iter().map(|r| r.warp + 1).max().unwrap_or(0);
        let accesses: usize = self.records.iter().map(|r| r.accesses.len()).sum();
        format!(
            "{} events, {} warps, {} register-file accesses",
            self.records.len(),
            warps,
            accesses
        )
    }
}

impl TraceSink for TraceExporter {
    fn on_instr(&mut self, event: &InstrEvent<'_>) {
        let seq = self.records.len() as u64;
        self.records.push(TraceRecord {
            seq,
            warp: event.warp,
            at: event.at,
            op: event.instr.to_string(),
            strand: self.map[event.at.block.index()][event.at.index],
            active_mask: event.active_mask,
            exec_mask: event.exec_mask,
            accesses: event.plan.accesses().to_vec(),
        });
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecMode, Launch};
    use crate::mem::GlobalMemory;
    use rfh_alloc::AllocConfig;
    use rfh_energy::EnergyModel;

    fn run(text: &str, cfg: Option<AllocConfig>) -> TraceExporter {
        let mut kernel = rfh_isa::parse_kernel(text).unwrap();
        let mode = match cfg {
            Some(cfg) => {
                rfh_alloc::allocate(&mut kernel, &cfg, &EnergyModel::paper()).unwrap();
                ExecMode::Hierarchy(cfg)
            }
            None => ExecMode::Baseline,
        };
        let mut tx = TraceExporter::new(&kernel);
        let mut mem = GlobalMemory::new(4096);
        execute(&kernel, &Launch::new(1, 64), &mut mem, mode, &mut [&mut tx]).unwrap();
        tx
    }

    const KERNEL: &str = "
.kernel t
BB0:
  mov r0, %tid.x
  iadd r1 r0, 1
  st.global r0, r1
  exit
";

    #[test]
    fn records_follow_issue_order() {
        let tx = run(KERNEL, None);
        assert_eq!(tx.records().len(), 8, "4 instrs x 2 warps");
        for (i, r) in tx.records().iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn json_lines_shape() {
        let tx = run(KERNEL, Some(AllocConfig::two_level(3)));
        let json = tx.json_lines();
        assert_eq!(json.lines().count(), tx.records().len());
        for line in json.lines() {
            assert!(line.starts_with("{\"seq\":"), "line: {line}");
            assert!(line.ends_with("]}"), "line: {line}");
        }
        assert!(
            json.contains("\"place\":\"ORF"),
            "allocated kernel hits the ORF"
        );
        assert!(json.contains("\"kind\":\"write\""));
    }

    #[test]
    fn chrome_trace_shape() {
        let tx = run(KERNEL, None);
        let chrome = tx.chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.trim_end().ends_with("}"));
        assert_eq!(
            chrome.matches("\"ph\":\"X\"").count(),
            tx.records().len(),
            "one complete event per record"
        );
        assert!(
            chrome.contains("\"tid\":1"),
            "second warp has its own track"
        );
    }

    #[test]
    fn reruns_are_byte_identical() {
        let a = run(KERNEL, Some(AllocConfig::two_level(3)));
        let b = run(KERNEL, Some(AllocConfig::two_level(3)));
        assert_eq!(a.json_lines(), b.json_lines());
        assert_eq!(a.chrome_trace(), b.chrome_trace());
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\n\t"), "x\\n\\t");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn summary_counts() {
        let tx = run(KERNEL, None);
        let s = tx.summary();
        assert!(s.contains("8 events"), "{s}");
        assert!(s.contains("2 warps"), "{s}");
    }
}
