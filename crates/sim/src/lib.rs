#![warn(missing_docs)]

//! # rfh-sim — single-SM GPU simulator
//!
//! The execution substrate of the reproduction: everything the paper
//! obtains from Ocelot's emulator plus its custom trace-based simulator
//! (§5.1), rebuilt from scratch:
//!
//! * [`machine`] — the simulated machine parameters (Table 2);
//! * [`mem`] — global/shared/parameter memory;
//! * [`exec`] — a functional SIMT executor with predication and
//!   divergence (post-dominator reconvergence), which can run in
//!   *hierarchy-faithful* mode: operand values actually move through
//!   modeled ORF/LRF storage according to the compiler's placements, and
//!   upper levels are poisoned at strand boundaries — so a mis-allocated
//!   kernel produces wrong results instead of silently passing;
//! * [`sink`] — the instruction-trace observer interface, including the
//!   [`FanoutSink`] combinator for composing observer stacks;
//! * [`counts`] — access counting for software-managed hierarchies;
//! * [`profile`] — per-strand energy attribution (accesses × energy
//!   model, bucketed by strand);
//! * [`trace`] — structured trace export (JSON lines / Chrome trace);
//! * [`rfc`] — the hardware register file cache baseline of prior work
//!   \[11\] (FIFO, allocate-on-miss, static-liveness writeback elision,
//!   flush on deschedule), in two- and three-level variants;
//! * [`usage`] — dynamic register value usage statistics (Figure 2);
//! * [`timing`] — a cycle-level model of the two-level warp scheduler
//!   verifying the no-performance-loss claim, recomposed from
//!   latency-insensitive stage combinators ([`timing::stage`]) with the
//!   original engine frozen as a differential oracle
//!   ([`timing::reference`]), and scaled to N SMs sharing a memory model
//!   ([`timing::multi_sm`]).
//!
//! ## Example
//!
//! ```
//! use rfh_sim::{exec::{execute, ExecMode, Launch}, mem::GlobalMemory, counts::SwCounter};
//!
//! let kernel = rfh_isa::parse_kernel("
//! .kernel double
//! BB0:
//!   mov r0, %tid.x
//!   ld.global r1 r0
//!   iadd r2 r1, r1
//!   st.global r0, r2
//!   exit
//! ").unwrap();
//! let launch = Launch::new(1, 32);
//! let mut mem = GlobalMemory::new(64);
//! for i in 0..32 { mem.store(i, i); }
//! let mut counter = SwCounter::default();
//! execute(&kernel, &launch, &mut mem, ExecMode::Baseline, &mut [&mut counter]).unwrap();
//! assert_eq!(mem.load(3).unwrap(), 6);
//! assert!(counter.counts().mrf_read > 0);
//! ```

pub mod counts;
pub mod exec;
pub mod machine;
pub mod mem;
pub mod profile;
pub mod rfc;
pub mod sink;
pub mod timing;
pub mod trace;
pub mod usage;

pub use counts::SwCounter;
pub use exec::{execute, execute_with_engine, Engine, ExecError, ExecMode, ExecReport, Launch};
pub use machine::MachineConfig;
pub use mem::GlobalMemory;
pub use profile::EnergyProfiler;
pub use rfc::{HwCounter, RfcConfig};
pub use sink::{FanoutSink, TraceSink};
pub use timing::{
    simulate_multi_sm, simulate_timing, simulate_timing_with_engine, BankPolicy, ConfigError,
    DeadlockSnapshot, Engine as TimingEngine, LatencyClass, MemoryModel, MultiSmConfig,
    MultiSmResult, SchedPolicy, SmResult, TimingConfig, TimingError, TimingResult, WarpSnapshot,
    DEFAULT_MAX_CYCLES,
};
pub use trace::TraceExporter;
pub use usage::UsageStats;
