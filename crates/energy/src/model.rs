//! The energy model parameters (paper §5.2, Tables 3 and 4).

/// Read/write energy of one 128-bit access to an ORF of a given size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrfAccessEnergy {
    /// Entries per thread this row applies to (1–8).
    pub entries: usize,
    /// Read energy in pJ.
    pub read_pj: f64,
    /// Write energy in pJ.
    pub write_pj: f64,
}

/// Table 3: energy to access 128 bits from ORFs sized for 8 active warps,
/// synthesized as 3R1W flip-flop arrays in a 40 nm library at 1 GHz, 0.9 V.
pub const ORF_TABLE: [OrfAccessEnergy; 8] = [
    OrfAccessEnergy {
        entries: 1,
        read_pj: 0.7,
        write_pj: 2.0,
    },
    OrfAccessEnergy {
        entries: 2,
        read_pj: 1.2,
        write_pj: 3.8,
    },
    OrfAccessEnergy {
        entries: 3,
        read_pj: 1.2,
        write_pj: 4.4,
    },
    OrfAccessEnergy {
        entries: 4,
        read_pj: 1.9,
        write_pj: 6.1,
    },
    OrfAccessEnergy {
        entries: 5,
        read_pj: 2.0,
        write_pj: 6.0,
    },
    OrfAccessEnergy {
        entries: 6,
        read_pj: 2.0,
        write_pj: 6.7,
    },
    OrfAccessEnergy {
        entries: 7,
        read_pj: 2.4,
        write_pj: 7.7,
    },
    OrfAccessEnergy {
        entries: 8,
        read_pj: 3.4,
        write_pj: 10.9,
    },
];

/// The wire energy model of Table 4, following \[14\]: energy per mm for a
/// 32-bit value is `activity × ½ C V² × 32` ≈ 1.9 pJ/mm at 300 fF/mm,
/// 0.9 V, 50% activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Wire capacitance in fF per mm.
    pub capacitance_ff_per_mm: f64,
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Signalling activity factor (fraction of bits toggling).
    pub activity: f64,
}

impl WireModel {
    /// The paper's wire model: 300 fF/mm, 0.9 V, 0.5 activity
    /// (≈ 1.9 pJ per 32 bits per mm).
    pub const fn paper() -> Self {
        WireModel {
            capacitance_ff_per_mm: 300.0,
            voltage: 0.9,
            activity: 0.5,
        }
    }

    /// Energy in pJ to move `bits` bits over `mm` millimetres.
    ///
    /// # Examples
    ///
    /// ```
    /// use rfh_energy::WireModel;
    /// let w = WireModel::paper();
    /// let pj = w.energy_pj(32, 1.0);
    /// assert!((pj - 1.9).abs() < 0.1, "paper quotes 1.9 pJ/mm for 32 bits");
    /// ```
    pub fn energy_pj(&self, bits: u32, mm: f64) -> f64 {
        let cv2_fj_per_bit_mm = 0.5 * self.capacitance_ff_per_mm * self.voltage * self.voltage;
        self.activity * cv2_fj_per_bit_mm * bits as f64 * mm / 1000.0
    }
}

/// The full energy model: per-level access energies, wire distances, and
/// the wire model.
///
/// All distances are in mm and match Table 4; access energies are per
/// 128-bit (4-thread) access.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// MRF read energy per 128-bit access (pJ).
    pub mrf_read_pj: f64,
    /// MRF write energy per 128-bit access (pJ).
    pub mrf_write_pj: f64,
    /// LRF read energy per 128-bit access (pJ); equals the 1-entry ORF row.
    pub lrf_read_pj: f64,
    /// LRF write energy per 128-bit access (pJ).
    pub lrf_write_pj: f64,
    /// ORF access energy by size (Table 3).
    pub orf_table: Vec<OrfAccessEnergy>,
    /// The wire energy model.
    pub wire: WireModel,
    /// Distance from the MRF to the private datapath (mm).
    pub mrf_to_private_mm: f64,
    /// Distance from the ORF to the private datapath (mm).
    pub orf_to_private_mm: f64,
    /// Distance from the LRF to the private datapath (mm).
    pub lrf_to_private_mm: f64,
    /// Distance from the MRF to the shared datapath (mm).
    pub mrf_to_shared_mm: f64,
    /// Distance from the ORF to the shared datapath (mm).
    pub orf_to_shared_mm: f64,
}

impl EnergyModel {
    /// The paper's model (Tables 3 and 4).
    pub fn paper() -> Self {
        EnergyModel {
            mrf_read_pj: 8.0,
            mrf_write_pj: 11.0,
            lrf_read_pj: 0.7,
            lrf_write_pj: 2.0,
            orf_table: ORF_TABLE.to_vec(),
            wire: WireModel::paper(),
            mrf_to_private_mm: 1.0,
            orf_to_private_mm: 0.2,
            lrf_to_private_mm: 0.05,
            mrf_to_shared_mm: 1.0,
            orf_to_shared_mm: 0.4,
        }
    }

    /// ORF access energy for a given size in entries per thread.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or larger than the table (8).
    pub fn orf_access(&self, entries: usize) -> OrfAccessEnergy {
        assert!(
            entries >= 1 && entries <= self.orf_table.len(),
            "ORF size out of range"
        );
        self.orf_table[entries - 1]
    }

    /// Wire energy of one 128-bit access over `mm` (4 × 32-bit words fanned
    /// out to the 4 lanes of a cluster).
    pub fn wire_128(&self, mm: f64) -> f64 {
        self.wire.energy_pj(128, mm)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_rows_are_monotonic_enough() {
        // Energy generally grows with size; the paper's table has one
        // non-monotonic read step (4→5 write), so check endpoints.
        assert!(ORF_TABLE[7].read_pj > ORF_TABLE[0].read_pj);
        assert!(ORF_TABLE[7].write_pj > ORF_TABLE[0].write_pj);
        for (i, row) in ORF_TABLE.iter().enumerate() {
            assert_eq!(row.entries, i + 1);
            assert!(row.write_pj > row.read_pj, "writes cost more than reads");
        }
    }

    #[test]
    fn wire_model_matches_paper_quote() {
        let w = WireModel::paper();
        assert!((w.energy_pj(32, 1.0) - 1.9).abs() < 0.06);
        // Scales linearly in bits and distance.
        assert!((w.energy_pj(128, 0.5) - 4.0 * w.energy_pj(32, 0.5)).abs() < 1e-9);
    }

    #[test]
    fn orf_access_lookup() {
        let m = EnergyModel::paper();
        assert_eq!(m.orf_access(3).read_pj, 1.2);
        assert_eq!(m.orf_access(3).write_pj, 4.4);
        assert_eq!(m.orf_access(8).write_pj, 10.9);
    }

    #[test]
    #[should_panic]
    fn orf_access_out_of_range_panics() {
        EnergyModel::paper().orf_access(9);
    }

    #[test]
    fn lrf_matches_single_entry_orf() {
        let m = EnergyModel::paper();
        assert_eq!(m.lrf_read_pj, m.orf_access(1).read_pj);
        assert_eq!(m.lrf_write_pj, m.orf_access(1).write_pj);
    }

    #[test]
    fn wire_distance_ratios_match_paper() {
        // "wire energy for the private datapath is reduced by a factor of 5
        //  for ORF accesses and a factor of 20 for LRF accesses".
        let m = EnergyModel::paper();
        assert!((m.mrf_to_private_mm / m.orf_to_private_mm - 5.0).abs() < 1e-9);
        assert!((m.mrf_to_private_mm / m.lrf_to_private_mm - 20.0).abs() < 1e-9);
    }
}
