#![warn(missing_docs)]

//! # rfh-energy — register file hierarchy energy model
//!
//! Encodes the paper's energy model (§5.2, Tables 3 and 4):
//!
//! * the MRF is modeled as 128-bit wide, 1R1W SRAM banks (8 pJ read, 11 pJ
//!   write per 128-bit access);
//! * the ORF and LRF are 3R1W flip-flop arrays; the per-access energy of the
//!   ORF grows with its size (Table 3, reproduced in
//!   [`model::ORF_TABLE`]);
//! * wire energy follows the methodology of the ExaScale study \[14\]:
//!   300 fF/mm, 0.9 V, ≈1.9 pJ per 32 bits per mm, with the distances of
//!   Table 4 (the ORF sits 5× closer to the private datapath than the MRF,
//!   the LRF 20× closer).
//!
//! Access counts are tallied by the simulator into [`AccessCounts`] (in
//! units of one 128-bit, 4-thread cluster access — the same unit at every
//! level, so normalized results are unit-free), and [`EnergyModel::energy`]
//! turns them into a per-level access/wire [`EnergyBreakdown`].
//!
//! ## Example
//!
//! ```
//! use rfh_energy::{AccessCounts, EnergyModel};
//!
//! let model = EnergyModel::paper();
//! let mut counts = AccessCounts::default();
//! counts.mrf_read = 160;
//! counts.mrf_write = 80;
//! let baseline = model.energy(&counts, 3).total();
//!
//! // Move half the reads to a 3-entry ORF: energy drops.
//! counts.mrf_read = 80;
//! counts.orf_read_private = 80;
//! assert!(model.energy(&counts, 3).total() < baseline);
//! ```

pub mod counts;
pub mod model;

pub use counts::{AccessCounts, EnergyBreakdown};
pub use model::{EnergyModel, OrfAccessEnergy, WireModel, ORF_TABLE};
