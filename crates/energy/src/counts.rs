//! Access counts and energy accounting.

use std::fmt;
use std::ops::{Add, AddAssign};

use rfh_isa::access::{AccessKind, AccessPlan, Datapath, Place, RegAccess};
use rfh_isa::Level;

use crate::model::EnergyModel;

/// Register file hierarchy access counts, in units of one 128-bit (4-thread
/// cluster) access.
///
/// Reads and writes that interact with the shared datapath (SFU/MEM/TEX)
/// are tracked separately because their wire runs are longer (Table 4); the
/// LRF is reachable only from the private datapath, so it has no shared
/// variants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCounts {
    /// MRF reads (either datapath; both sit 1 mm away).
    pub mrf_read: u64,
    /// MRF writes.
    pub mrf_write: u64,
    /// ORF reads consumed by the private (ALU) datapath.
    pub orf_read_private: u64,
    /// ORF reads consumed by the shared datapath.
    pub orf_read_shared: u64,
    /// ORF writes produced by the private datapath.
    pub orf_write_private: u64,
    /// ORF writes produced by the shared datapath (e.g. load results).
    pub orf_write_shared: u64,
    /// LRF reads (private datapath only).
    pub lrf_read: u64,
    /// LRF writes (private datapath only).
    pub lrf_write: u64,
}

impl AccessCounts {
    /// Total reads across the hierarchy.
    pub fn total_reads(&self) -> u64 {
        self.mrf_read + self.orf_read_private + self.orf_read_shared + self.lrf_read
    }

    /// Total writes across the hierarchy.
    pub fn total_writes(&self) -> u64 {
        self.mrf_write + self.orf_write_private + self.orf_write_shared + self.lrf_write
    }

    /// Reads per level, for reporting.
    pub fn reads(&self, level: Level) -> u64 {
        match level {
            Level::Mrf => self.mrf_read,
            Level::Orf => self.orf_read_private + self.orf_read_shared,
            Level::Lrf => self.lrf_read,
        }
    }

    /// Writes per level, for reporting.
    pub fn writes(&self, level: Level) -> u64 {
        match level {
            Level::Mrf => self.mrf_write,
            Level::Orf => self.orf_write_private + self.orf_write_shared,
            Level::Lrf => self.lrf_write,
        }
    }

    /// Tallies one resolved register-file access.
    ///
    /// This is the single mapping from the canonical [`RegAccess`] form to
    /// the count fields the energy model prices: reads and writes land at
    /// their level split by datapath, and a fill deposit is a private-side
    /// ORF write (its paired MRF read arrives as its own `Read` access).
    pub fn record(&mut self, access: &RegAccess) {
        let shared = access.datapath == Datapath::Shared;
        match (access.kind, access.place) {
            (AccessKind::Read, Place::Mrf) => self.mrf_read += 1,
            (AccessKind::Read, Place::Orf(_)) if shared => self.orf_read_shared += 1,
            (AccessKind::Read, Place::Orf(_)) => self.orf_read_private += 1,
            (AccessKind::Read, Place::Lrf(_)) => self.lrf_read += 1,
            (AccessKind::Fill, _) => self.orf_write_private += 1,
            (AccessKind::Write, Place::Mrf) => self.mrf_write += 1,
            (AccessKind::Write, Place::Orf(_)) if shared => self.orf_write_shared += 1,
            (AccessKind::Write, Place::Orf(_)) => self.orf_write_private += 1,
            (AccessKind::Write, Place::Lrf(_)) => self.lrf_write += 1,
        }
    }

    /// Tallies every access of a resolved instruction plan.
    pub fn record_plan(&mut self, plan: &AccessPlan) {
        for access in plan.accesses() {
            self.record(access);
        }
    }
}

impl Add for AccessCounts {
    type Output = AccessCounts;

    fn add(mut self, rhs: AccessCounts) -> AccessCounts {
        self += rhs;
        self
    }
}

impl AddAssign for AccessCounts {
    fn add_assign(&mut self, rhs: AccessCounts) {
        self.mrf_read += rhs.mrf_read;
        self.mrf_write += rhs.mrf_write;
        self.orf_read_private += rhs.orf_read_private;
        self.orf_read_shared += rhs.orf_read_shared;
        self.orf_write_private += rhs.orf_write_private;
        self.orf_write_shared += rhs.orf_write_shared;
        self.lrf_read += rhs.lrf_read;
        self.lrf_write += rhs.lrf_write;
    }
}

/// Energy split into access and wire components per hierarchy level (all in
/// pJ), matching the stacking of the paper's Figure 14.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// MRF bank access energy.
    pub mrf_access: f64,
    /// MRF wire energy.
    pub mrf_wire: f64,
    /// ORF bank access energy.
    pub orf_access: f64,
    /// ORF wire energy.
    pub orf_wire: f64,
    /// LRF access energy.
    pub lrf_access: f64,
    /// LRF wire energy.
    pub lrf_wire: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total(&self) -> f64 {
        self.mrf_access
            + self.mrf_wire
            + self.orf_access
            + self.orf_wire
            + self.lrf_access
            + self.lrf_wire
    }

    /// This breakdown scaled by `1 / baseline_total`, for normalized plots.
    pub fn normalized_to(&self, baseline_total: f64) -> EnergyBreakdown {
        let s = 1.0 / baseline_total;
        EnergyBreakdown {
            mrf_access: self.mrf_access * s,
            mrf_wire: self.mrf_wire * s,
            orf_access: self.orf_access * s,
            orf_wire: self.orf_wire * s,
            lrf_access: self.lrf_access * s,
            lrf_wire: self.lrf_wire * s,
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MRF {:.2}+{:.2} ORF {:.2}+{:.2} LRF {:.2}+{:.2} (total {:.2} pJ)",
            self.mrf_access,
            self.mrf_wire,
            self.orf_access,
            self.orf_wire,
            self.lrf_access,
            self.lrf_wire,
            self.total()
        )
    }
}

impl EnergyModel {
    /// Converts access counts into an access/wire energy breakdown for a
    /// hierarchy with `orf_entries` ORF entries per thread.
    ///
    /// # Panics
    ///
    /// Panics if `orf_entries` is outside the ORF table (1–8). A hierarchy
    /// with no ORF can simply leave the ORF counts at zero.
    pub fn energy(&self, c: &AccessCounts, orf_entries: usize) -> EnergyBreakdown {
        let orf = self.orf_access(orf_entries);
        let n = |x: u64| x as f64;
        EnergyBreakdown {
            mrf_access: n(c.mrf_read) * self.mrf_read_pj + n(c.mrf_write) * self.mrf_write_pj,
            mrf_wire: n(c.mrf_read + c.mrf_write) * self.wire_128(self.mrf_to_private_mm),
            orf_access: n(c.orf_read_private + c.orf_read_shared) * orf.read_pj
                + n(c.orf_write_private + c.orf_write_shared) * orf.write_pj,
            orf_wire: n(c.orf_read_private + c.orf_write_private)
                * self.wire_128(self.orf_to_private_mm)
                + n(c.orf_read_shared + c.orf_write_shared) * self.wire_128(self.orf_to_shared_mm),
            lrf_access: n(c.lrf_read) * self.lrf_read_pj + n(c.lrf_write) * self.lrf_write_pj,
            lrf_wire: n(c.lrf_read + c.lrf_write) * self.wire_128(self.lrf_to_private_mm),
        }
    }

    /// The energy the same traffic would cost on a single-level register
    /// file (every access served by the MRF) — the normalization baseline.
    pub fn baseline_energy(&self, total_reads: u64, total_writes: u64) -> EnergyBreakdown {
        let c = AccessCounts {
            mrf_read: total_reads,
            mrf_write: total_writes,
            ..Default::default()
        };
        self.energy(&c, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::paper()
    }

    #[test]
    fn totals_sum_all_levels() {
        let c = AccessCounts {
            mrf_read: 1,
            mrf_write: 2,
            orf_read_private: 3,
            orf_read_shared: 4,
            orf_write_private: 5,
            orf_write_shared: 6,
            lrf_read: 7,
            lrf_write: 8,
        };
        assert_eq!(c.total_reads(), 15);
        assert_eq!(c.total_writes(), 21);
        assert_eq!(c.reads(Level::Orf), 7);
        assert_eq!(c.writes(Level::Orf), 11);
        assert_eq!(c.reads(Level::Lrf), 7);
    }

    #[test]
    fn add_accumulates_fieldwise() {
        let mut a = AccessCounts {
            mrf_read: 1,
            ..Default::default()
        };
        let b = AccessCounts {
            mrf_read: 2,
            lrf_write: 5,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.mrf_read, 3);
        assert_eq!(a.lrf_write, 5);
        let c = a + b;
        assert_eq!(c.mrf_read, 5);
    }

    #[test]
    fn record_maps_accesses_to_fields() {
        use rfh_isa::access::{AccessKind, AccessSlot, Datapath, Place, RegAccess};
        use rfh_isa::{Reg, Width};
        let mk = |kind, place, datapath| RegAccess {
            kind,
            place,
            datapath,
            reg: Reg::new(0),
            slot: AccessSlot::Src(0),
            width: Width::W32,
        };
        let mut c = AccessCounts::default();
        c.record(&mk(AccessKind::Read, Place::Mrf, Datapath::Shared));
        c.record(&mk(AccessKind::Read, Place::Orf(1), Datapath::Shared));
        c.record(&mk(AccessKind::Read, Place::Lrf(None), Datapath::Private));
        c.record(&mk(AccessKind::Fill, Place::Orf(0), Datapath::Private));
        c.record(&mk(AccessKind::Write, Place::Orf(2), Datapath::Shared));
        c.record(&mk(AccessKind::Write, Place::Lrf(None), Datapath::Private));
        c.record(&mk(AccessKind::Write, Place::Mrf, Datapath::Shared));
        assert_eq!(c.mrf_read, 1);
        assert_eq!(c.orf_read_shared, 1);
        assert_eq!(c.lrf_read, 1);
        assert_eq!(c.orf_write_private, 1, "the fill is a private ORF write");
        assert_eq!(c.orf_write_shared, 1);
        assert_eq!(c.lrf_write, 1);
        assert_eq!(c.mrf_write, 1);
    }

    #[test]
    fn mrf_only_energy_matches_hand_calculation() {
        let c = AccessCounts {
            mrf_read: 10,
            mrf_write: 5,
            ..Default::default()
        };
        let e = model().energy(&c, 3);
        assert!((e.mrf_access - (10.0 * 8.0 + 5.0 * 11.0)).abs() < 1e-9);
        let wire_per_access = model().wire_128(1.0);
        assert!((e.mrf_wire - 15.0 * wire_per_access).abs() < 1e-9);
        assert_eq!(e.orf_access, 0.0);
        assert_eq!(e.lrf_wire, 0.0);
    }

    #[test]
    fn shared_orf_wire_costs_more_than_private() {
        let private = AccessCounts {
            orf_read_private: 10,
            ..Default::default()
        };
        let shared = AccessCounts {
            orf_read_shared: 10,
            ..Default::default()
        };
        let m = model();
        let ep = m.energy(&private, 3);
        let es = m.energy(&shared, 3);
        assert_eq!(ep.orf_access, es.orf_access);
        assert!(es.orf_wire > ep.orf_wire);
        assert!(
            (es.orf_wire / ep.orf_wire - 2.0).abs() < 1e-9,
            "0.4 mm vs 0.2 mm"
        );
    }

    #[test]
    fn lrf_is_far_cheaper_than_mrf() {
        let m = model();
        let lrf = AccessCounts {
            lrf_read: 100,
            lrf_write: 100,
            ..Default::default()
        };
        let mrf = AccessCounts {
            mrf_read: 100,
            mrf_write: 100,
            ..Default::default()
        };
        assert!(m.energy(&lrf, 1).total() < m.energy(&mrf, 1).total() / 5.0);
    }

    #[test]
    fn baseline_energy_equals_all_mrf_traffic() {
        let m = model();
        let b = m.baseline_energy(100, 50);
        let c = AccessCounts {
            mrf_read: 100,
            mrf_write: 50,
            ..Default::default()
        };
        assert_eq!(b, m.energy(&c, 1));
    }

    #[test]
    fn normalization_scales_every_component() {
        let c = AccessCounts {
            mrf_read: 10,
            lrf_read: 10,
            ..Default::default()
        };
        let e = model().energy(&c, 3);
        let n = e.normalized_to(e.total() * 2.0);
        assert!((n.total() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ideal_lrf_bound_is_near_paper() {
        // Paper §7: "An ideal system where every access is to the LRF would
        // reduce register file energy by 87%." With 1.6 reads and 0.8
        // writes per instruction, check we land in the same regime (>80%).
        let m = model();
        let ideal = AccessCounts {
            lrf_read: 160,
            lrf_write: 80,
            ..Default::default()
        };
        let base = m.baseline_energy(160, 80).total();
        let saving = 1.0 - m.energy(&ideal, 1).total() / base;
        assert!(saving > 0.80 && saving < 0.95, "saving = {saving}");
    }
}
