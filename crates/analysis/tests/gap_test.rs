#[test]
fn loop_header_after_nonpred_block() {
    let mut k = rfh_isa::parse_kernel(
        "
.kernel gap
BB0:
  setp.lt p0 r0, 1
  @p0 bra BB2
BB1:
  mov r5, 1
  bra BB3
BB2:
  iadd r0 r0, 1
  setp.lt p1 r0, 10
  @p1 bra BB2
BB3:
  exit
",
    )
    .unwrap();
    let info = rfh_analysis::strand::mark_strands(&mut k);
    for (si, s) in info.strands.iter().enumerate() {
        eprintln!("strand {si}: {:?} reason {:?}", s.blocks(), s.end_reason);
    }
    let h = rfh_analysis::strand::StrandInfo::strand_of(
        &info,
        rfh_isa::InstrRef {
            block: rfh_isa::BlockId::new(2),
            index: 0,
        },
    );
    let b1 = info.strand_of(rfh_isa::InstrRef {
        block: rfh_isa::BlockId::new(1),
        index: 0,
    });
    assert_ne!(h, b1, "loop header must start a new strand");
}
