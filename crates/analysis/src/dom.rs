//! Dominator and post-dominator trees.
//!
//! Implemented with the Cooper–Harvey–Kennedy iterative algorithm over a
//! reverse-postorder numbering. Post-dominators are computed on the reversed
//! CFG with a virtual exit node joining all real exits; they provide the
//! branch *reconvergence points* used by the SIMT executor in `rfh-sim`.

use rfh_isa::{BlockId, Kernel};

/// A (post-)dominator tree over a kernel's blocks.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block; `None` for the root and for
    /// unreachable blocks.
    idom: Vec<Option<u32>>,
    /// Whether each block is reachable from the tree's root.
    reachable: Vec<bool>,
}

/// Reverse postorder of the graph `succs` starting at `entry`.
fn reverse_postorder(n: usize, entry: usize, succs: &dyn Fn(usize) -> Vec<usize>) -> Vec<usize> {
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with explicit successor cursors.
    let mut stack: Vec<(usize, Vec<usize>, usize)> = vec![(entry, succs(entry), 0)];
    state[entry] = 1;
    while let Some((node, ss, cursor)) = stack.last_mut() {
        if let Some(&next) = ss.get(*cursor) {
            *cursor += 1;
            if state[next] == 0 {
                state[next] = 1;
                stack.push((next, succs(next), 0));
            }
        } else {
            state[*node] = 2;
            post.push(*node);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Cooper–Harvey–Kennedy immediate dominators.
///
/// `preds` must enumerate predecessors in the same graph orientation as the
/// RPO traversal. Returns idoms indexed by node; the entry maps to itself.
fn compute_idoms(
    n: usize,
    entry: usize,
    rpo: &[usize],
    preds: &[Vec<usize>],
) -> Vec<Option<usize>> {
    let mut rpo_num = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_num[b] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[entry] = Some(entry);

    let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while rpo_num[a] > rpo_num[b] {
                a = idom[a].expect("processed node has idom");
            }
            while rpo_num[b] > rpo_num[a] {
                b = idom[b].expect("processed node has idom");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<usize> = None;
            for &p in &preds[b] {
                if idom[p].is_some() {
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
            }
            if new_idom.is_some() && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

impl DomTree {
    /// Computes the dominator tree rooted at the kernel entry.
    ///
    /// # Examples
    ///
    /// ```
    /// use rfh_analysis::DomTree;
    /// let k = rfh_isa::parse_kernel("
    /// .kernel d
    /// BB0:
    ///   setp.lt p0 r0, 1
    ///   @p0 bra BB2
    /// BB1:
    ///   iadd r1 r0, 1
    /// BB2:
    ///   exit
    /// ").unwrap();
    /// let dom = DomTree::dominators(&k);
    /// let bb = rfh_isa::BlockId::new;
    /// assert_eq!(dom.idom(bb(2)), Some(bb(0)));
    /// assert!(dom.dominates(bb(0), bb(2)));
    /// assert!(!dom.dominates(bb(1), bb(2)));
    /// ```
    pub fn dominators(kernel: &Kernel) -> DomTree {
        let n = kernel.blocks.len();
        let entry = kernel.entry().index();
        let succs = |b: usize| -> Vec<usize> {
            kernel
                .successors(BlockId::new(b as u32))
                .iter()
                .map(|s| s.index())
                .collect()
        };
        let rpo = reverse_postorder(n, entry, &succs);
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for b in 0..n {
            for s in succs(b) {
                preds[s].push(b);
            }
        }
        let idoms = compute_idoms(n, entry, &rpo, &preds);
        DomTree::from_raw(idoms, entry, n)
    }

    /// Computes the post-dominator tree (rooted at a virtual exit joining
    /// all blocks with no successors).
    ///
    /// A block's immediate post-dominator is `None` when its only
    /// post-dominator is the virtual exit — i.e. paths from it diverge to
    /// different exits (or it exits directly).
    pub fn post_dominators(kernel: &Kernel) -> DomTree {
        let n = kernel.blocks.len();
        let virt = n; // virtual exit node
                      // Reversed graph: successors of b are b's CFG predecessors; the
                      // virtual exit's successors are the real exit blocks.
        let preds_of: Vec<Vec<usize>> = kernel
            .predecessors()
            .into_iter()
            .map(|ps| ps.into_iter().map(|p| p.index()).collect())
            .collect();
        let exits: Vec<usize> = (0..n)
            .filter(|&b| kernel.successors(BlockId::new(b as u32)).is_empty())
            .collect();
        let succs = move |b: usize| -> Vec<usize> {
            if b == virt {
                exits.clone()
            } else {
                preds_of[b].clone()
            }
        };
        let rpo = reverse_postorder(n + 1, virt, &succs);
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for b in 0..=n {
            for s in succs(b) {
                preds[s].push(b);
            }
        }
        let mut idoms = compute_idoms(n + 1, virt, &rpo, &preds);
        // Map "post-dominated only by the virtual exit" to None.
        for d in idoms.iter_mut() {
            if *d == Some(virt) {
                *d = None;
            }
        }
        idoms.truncate(n);
        DomTree::from_raw(idoms, virt, n)
    }

    fn from_raw(idoms: Vec<Option<usize>>, root: usize, n: usize) -> DomTree {
        let reachable: Vec<bool> = (0..n)
            .map(|b| b == root || idoms.get(b).copied().flatten().is_some())
            .collect();
        let idom = (0..n)
            .map(|b| {
                let d = idoms.get(b).copied().flatten();
                match d {
                    Some(d) if d != b && d < n => Some(d as u32),
                    _ => None,
                }
            })
            .collect();
        DomTree { idom, reachable }
    }

    /// The immediate (post-)dominator of `b`, or `None` for the root,
    /// unreachable blocks, and (for post-dominators) blocks whose only
    /// post-dominator is the virtual exit.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()].map(BlockId::new)
    }

    /// Whether `b` was reachable from the tree's root.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable[b.index()]
    }

    /// Whether `a` (post-)dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = Some(b);
        while let Some(c) = cur {
            if c == a {
                return true;
            }
            cur = self.idom(c);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_isa::parse_kernel;

    fn bb(i: u32) -> BlockId {
        BlockId::new(i)
    }

    /// Diamond: BB0 → {BB1, BB2} → BB3.
    fn diamond() -> Kernel {
        parse_kernel(
            "
.kernel diamond
BB0:
  setp.lt p0 r0, 1
  @p0 bra BB2
BB1:
  iadd r1 r0, 1
  bra BB3
BB2:
  iadd r1 r0, 2
BB3:
  exit
",
        )
        .unwrap()
    }

    #[test]
    fn diamond_dominators() {
        let d = DomTree::dominators(&diamond());
        assert_eq!(d.idom(bb(0)), None);
        assert_eq!(d.idom(bb(1)), Some(bb(0)));
        assert_eq!(d.idom(bb(2)), Some(bb(0)));
        assert_eq!(d.idom(bb(3)), Some(bb(0)));
        assert!(d.dominates(bb(0), bb(3)));
        assert!(!d.dominates(bb(1), bb(3)));
        assert!(d.dominates(bb(3), bb(3)));
    }

    #[test]
    fn diamond_post_dominators() {
        let p = DomTree::post_dominators(&diamond());
        assert_eq!(p.idom(bb(0)), Some(bb(3)));
        assert_eq!(p.idom(bb(1)), Some(bb(3)));
        assert_eq!(p.idom(bb(2)), Some(bb(3)));
        assert_eq!(p.idom(bb(3)), None);
        assert!(p.dominates(bb(3), bb(0)));
    }

    #[test]
    fn loop_dominators() {
        // BB0 → BB1 ⇄ BB1, BB1 → BB2
        let k = parse_kernel(
            "
.kernel l
BB0:
  mov r0, 0
BB1:
  iadd r0 r0, 1
  setp.lt p0 r0, 10
  @p0 bra BB1
BB2:
  exit
",
        )
        .unwrap();
        let d = DomTree::dominators(&k);
        assert_eq!(d.idom(bb(1)), Some(bb(0)));
        assert_eq!(d.idom(bb(2)), Some(bb(1)));
        let p = DomTree::post_dominators(&k);
        assert_eq!(p.idom(bb(0)), Some(bb(1)));
        assert_eq!(p.idom(bb(1)), Some(bb(2)));
    }

    #[test]
    fn unreachable_block_has_no_idom() {
        let k = parse_kernel(
            "
.kernel u
BB0:
  bra BB2
BB1:
  iadd r0 r0, 1
BB2:
  exit
",
        )
        .unwrap();
        let d = DomTree::dominators(&k);
        assert_eq!(d.idom(bb(1)), None);
        assert!(!d.is_reachable(bb(1)));
        assert!(d.is_reachable(bb(2)));
        assert_eq!(d.idom(bb(2)), Some(bb(0)));
    }

    #[test]
    fn multi_exit_post_dominators() {
        // BB0 branches to BB2 (exit) or falls to BB1 (exit): no common
        // post-dominator other than the virtual exit.
        let k = parse_kernel(
            "
.kernel m
BB0:
  setp.lt p0 r0, 1
  @p0 bra BB2
BB1:
  exit
BB2:
  exit
",
        )
        .unwrap();
        let p = DomTree::post_dominators(&k);
        assert_eq!(p.idom(bb(0)), None);
        assert_eq!(p.idom(bb(1)), None);
        assert_eq!(p.idom(bb(2)), None);
    }
}
