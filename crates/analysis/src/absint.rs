//! Abstract interpretation: value ranges, tid-affine forms, and uniformity.
//!
//! A fixpoint abstract interpreter over the kernel CFG with two composable
//! domains per general-purpose register:
//!
//! * **interval value ranges** — the written word, viewed as a signed
//!   32-bit integer, lies in `[lo, hi]`; singletons are constants. An
//!   optional exact *tid-affine* form `bits == coef·tid + off (mod 2³²)`
//!   (with `tid` the thread index within the CTA) rides along and survives
//!   the wrapping integer ALU exactly;
//! * **uniformity** — whether all lanes of a warp hold equal values. This
//!   generalizes the warp-uniformity taint used by the barrier lint.
//!
//! Predicate registers get the analogous [`PredAbs`] domain: a known
//! truth value per lane plus warp-uniformity.
//!
//! The facts feed three consumers: the L009–L011 lints (plus sharper L005
//! race disjointness and L008 dead-edge pruning), the [`last_use`] hint
//! pass consumed by `rfh-alloc` under `--hints`, and a chaos layer that
//! checks every recorded claim against the executor per lane.
//!
//! ## Soundness notes
//!
//! * Interval, affine, and predicate-known claims are *per lane*: they hold
//!   for every lane whose control flow reaches the instruction. They join
//!   soundly across CFG edges by interval union / equality.
//! * Uniformity is a *cross-lane* claim, which does not survive joins of
//!   divergent paths (each side can be internally uniform with different
//!   values). The interpreter therefore computes the divergence region of
//!   every possibly-divergent branch (successors up to the immediate
//!   post-dominator) and kills the uniform bit on every register or
//!   predicate written inside it.
//! * Branch-edge refinement only sharpens per-lane claims (the guard's
//!   known value, and the compared register's interval when the guard's
//!   defining `setp` compares against a constant); it never manufactures
//!   uniformity.
//! * `concrete_alu` / `concrete_cmp` mirror `rfh-sim`'s scalar evaluators
//!   bit for bit; the chaos layer enforces the correspondence dynamically.

use rfh_isa::{
    BlockId, CmpOp, InstrRef, Kernel, Opcode, Operand, PredReg, SfuOp, Space, Special, Width,
};

use crate::dom::DomTree;

/// Launch-geometry context for the analysis. Every field is optional: with
/// no context the interpreter still knows `%tid.x = 1·tid + 0` and
/// `%laneid ∈ [0, 31]`, just not the upper bounds.
///
/// Thread indices are assumed to fit in `i32` (launches beyond 2³¹ threads
/// per CTA are not representable in the simulator).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbsCtx {
    /// Threads per CTA (`%ntid.x`), when known.
    pub threads_per_cta: Option<u32>,
    /// Number of CTAs (`%nctaid.x`), when known.
    pub ctas: Option<u32>,
}

/// An abstract value for one 32-bit register word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Lower interval bound on the word as a signed 32-bit integer.
    pub lo: i32,
    /// Upper interval bound on the word as a signed 32-bit integer.
    pub hi: i32,
    /// Exact affine form: `bits == coef·tid + off (mod 2³²)` per lane,
    /// with `tid` the lane's thread index within the CTA. `(0, c)` is the
    /// constant `c`.
    pub affine: Option<(i32, i32)>,
    /// Whether all lanes of a warp provably hold equal values.
    pub uniform: bool,
}

impl AbsVal {
    /// The unconstrained value: any bits, lane-dependent.
    pub const TOP: AbsVal = AbsVal {
        lo: i32::MIN,
        hi: i32::MAX,
        affine: None,
        uniform: false,
    };

    /// The known constant with the given bit pattern (same for all lanes).
    pub fn constant(bits: u32) -> AbsVal {
        let v = bits as i32;
        AbsVal {
            lo: v,
            hi: v,
            affine: Some((0, v)),
            uniform: true,
        }
    }

    /// The constant bit pattern, if the interval is a singleton.
    pub fn as_const(&self) -> Option<u32> {
        (self.lo == self.hi).then_some(self.lo as u32)
    }

    /// Completes a singleton interval with its constant affine form.
    /// Deliberately does *not* touch `uniform`: a singleton only proves the
    /// lanes *reaching this point* agree, not the whole warp.
    fn normalized(mut self) -> AbsVal {
        if self.lo == self.hi && self.affine.is_none() {
            self.affine = Some((0, self.lo));
        }
        self
    }

    /// Least upper bound: interval union, affine agreement, uniformity
    /// conjunction.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            affine: if self.affine == other.affine {
                self.affine
            } else {
                None
            },
            uniform: self.uniform && other.uniform,
        }
    }

    /// Threshold widening: any bound that grew jumps to the nearest
    /// *landmark* constant (harvested from the kernel's comparisons), or to
    /// ±∞ past the last landmark. Landmarks are what let a counted loop
    /// `for (i = 0; i < N; ...)` stabilize at `[0, N-1]` instead of
    /// overshooting to `+∞`; the finite landmark set keeps termination.
    fn widen_join(&self, other: &AbsVal, landmarks: &[i32]) -> AbsVal {
        let j = self.join(other);
        let lo = if j.lo < self.lo {
            landmarks
                .iter()
                .rev()
                .find(|&&t| t <= j.lo)
                .copied()
                .unwrap_or(i32::MIN)
        } else {
            self.lo
        };
        let hi = if j.hi > self.hi {
            landmarks
                .iter()
                .find(|&&t| t >= j.hi)
                .copied()
                .unwrap_or(i32::MAX)
        } else {
            self.hi
        };
        AbsVal { lo, hi, ..j }
    }
}

/// An abstract value for one predicate register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredAbs {
    /// Whether all lanes of a warp provably hold the same truth value.
    pub uniform: bool,
    /// The truth value every lane reaching this point provably holds.
    pub known: Option<bool>,
}

impl PredAbs {
    /// The unconstrained predicate.
    pub const TOP: PredAbs = PredAbs {
        uniform: false,
        known: None,
    };

    /// Least upper bound.
    pub fn join(&self, other: &PredAbs) -> PredAbs {
        PredAbs {
            uniform: self.uniform && other.uniform,
            known: if self.known == other.known {
                self.known
            } else {
                None
            },
        }
    }

    /// Whether a branch guarded by this predicate provably does not split
    /// the warp: either the value is warp-uniform, or every lane reaching
    /// the branch holds the same known value.
    pub fn never_diverges(&self) -> bool {
        self.uniform || self.known.is_some()
    }
}

/// The facts recorded for one instruction (state *before* it executes,
/// claims about what it writes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrFacts {
    /// Abstract values of the source operands, by slot (unused slots are
    /// [`AbsVal::TOP`]).
    pub srcs: [AbsVal; 3],
    /// Claim on the written destination word, for instructions with one.
    /// Holds per executing lane; `uniform` additionally claims all
    /// executing lanes write equal values.
    pub dst: Option<AbsVal>,
    /// Claim on the high word of a 64-bit destination.
    pub dst_hi: Option<AbsVal>,
    /// Claim on the written destination predicate (`setp`/`fsetp`).
    pub pdst: Option<PredAbs>,
    /// Abstract value of the guard predicate, for guarded instructions.
    pub guard: Option<PredAbs>,
    /// Whether any lane can execute this instruction: the block is
    /// reachable and the guard is not provably false.
    pub reachable: bool,
}

impl InstrFacts {
    /// Facts for an instruction in an unreachable block.
    fn unreachable() -> InstrFacts {
        InstrFacts {
            srcs: [AbsVal::TOP; 3],
            dst: None,
            dst_hi: None,
            pdst: None,
            guard: None,
            reachable: false,
        }
    }
}

/// A CFG edge the analysis proved no lane can take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadEdge {
    /// Source block.
    pub from: BlockId,
    /// Target block.
    pub to: BlockId,
    /// Whether this is the taken edge of a guarded branch (`false`: the
    /// fall-through edge).
    pub taken: bool,
}

/// The result of [`analyze`]: per-instruction facts plus derived CFG facts.
#[derive(Debug, Clone)]
pub struct AbsResults {
    facts: Vec<Vec<InstrFacts>>,
    /// Whether each block is reachable under the abstract semantics
    /// (entry-reachable along edges not proved dead).
    pub block_reachable: Vec<bool>,
    /// Edges out of reachable blocks that no lane can take.
    pub dead_edges: Vec<DeadEdge>,
}

impl AbsResults {
    /// The facts for the instruction at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is out of range for the analyzed kernel.
    pub fn fact(&self, at: InstrRef) -> &InstrFacts {
        &self.facts[at.block.index()][at.index]
    }
}

/// The abstract machine state: one value per register word and predicate.
#[derive(Debug, Clone, PartialEq)]
struct Env {
    regs: Vec<AbsVal>,
    preds: Vec<PredAbs>,
}

impl Env {
    fn top(num_regs: usize, num_preds: usize) -> Env {
        Env {
            regs: vec![AbsVal::TOP; num_regs],
            preds: vec![PredAbs::TOP; num_preds],
        }
    }

    /// Joins `other` into `self`; returns whether `self` changed. With
    /// `widen`, growing interval bounds jump to the nearest landmark or ±∞.
    fn join_from(&mut self, other: &Env, widen: bool, landmarks: &[i32]) -> bool {
        let mut changed = false;
        for (a, b) in self.regs.iter_mut().zip(&other.regs) {
            let j = if widen {
                a.widen_join(b, landmarks)
            } else {
                a.join(b)
            };
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        for (a, b) in self.preds.iter_mut().zip(&other.preds) {
            let j = a.join(b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        changed
    }
}

fn pred_fact(env: &Env, p: PredReg) -> PredAbs {
    env.preds
        .get(p.index() as usize)
        .copied()
        .unwrap_or(PredAbs::TOP)
}

fn special_fact(s: Special, ctx: AbsCtx) -> AbsVal {
    let bound = |n: Option<u32>| {
        n.and_then(|v| v.checked_sub(1))
            .map(|m| m.min(i32::MAX as u32) as i32)
            .unwrap_or(i32::MAX)
    };
    match s {
        Special::TidX => AbsVal {
            lo: 0,
            hi: bound(ctx.threads_per_cta),
            affine: Some((1, 0)),
            uniform: false,
        },
        Special::CtaIdX => AbsVal {
            lo: 0,
            hi: bound(ctx.ctas),
            affine: None,
            uniform: true,
        },
        Special::NTidX => launch_constant(ctx.threads_per_cta),
        Special::NCtaIdX => launch_constant(ctx.ctas),
        Special::LaneId => AbsVal {
            lo: 0,
            hi: 31,
            affine: None,
            uniform: false,
        },
        Special::WarpId => AbsVal {
            lo: 0,
            hi: ctx
                .threads_per_cta
                .map(|t| (t.div_ceil(32).max(1) - 1).min(i32::MAX as u32) as i32)
                .unwrap_or(i32::MAX),
            affine: None,
            uniform: true,
        },
    }
}

/// A launch parameter: a known warp-uniform constant, or an unknown but
/// still warp-uniform positive value.
fn launch_constant(v: Option<u32>) -> AbsVal {
    match v {
        Some(t) if t <= i32::MAX as u32 => AbsVal::constant(t),
        _ => AbsVal {
            lo: i32::MIN,
            hi: i32::MAX,
            affine: None,
            uniform: true,
        },
    }
}

fn operand_fact(op: Operand, env: &Env, ctx: AbsCtx) -> AbsVal {
    match op {
        Operand::Reg(r) => env
            .regs
            .get(r.index() as usize)
            .copied()
            .unwrap_or(AbsVal::TOP),
        Operand::Imm(v) => AbsVal::constant(v as u32),
        Operand::FBits(bits) => AbsVal::constant(bits),
        Operand::Special(s) => special_fact(s, ctx),
    }
}

/// Scalar ALU evaluation, mirroring `rfh-sim`'s `eval_alu` bit for bit.
/// Returns `None` for opcodes whose result is not a pure function of the
/// operand words (`sel`, memory, control).
pub fn concrete_alu(op: Opcode, a: u32, b: u32, c: u32) -> Option<u32> {
    let (ia, ib, ic) = (a as i32, b as i32, c as i32);
    let (fa, fb, fc) = (f32::from_bits(a), f32::from_bits(b), f32::from_bits(c));
    Some(match op {
        Opcode::IAdd => ia.wrapping_add(ib) as u32,
        Opcode::ISub => ia.wrapping_sub(ib) as u32,
        Opcode::IMul => ia.wrapping_mul(ib) as u32,
        Opcode::IMad => ia.wrapping_mul(ib).wrapping_add(ic) as u32,
        Opcode::IMin => ia.min(ib) as u32,
        Opcode::IMax => ia.max(ib) as u32,
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a.wrapping_shl(b & 31),
        Opcode::Shr => a.wrapping_shr(b & 31),
        Opcode::FAdd => (fa + fb).to_bits(),
        Opcode::FSub => (fa - fb).to_bits(),
        Opcode::FMul => (fa * fb).to_bits(),
        Opcode::FFma => fa.mul_add(fb, fc).to_bits(),
        Opcode::FMin => fa.min(fb).to_bits(),
        Opcode::FMax => fa.max(fb).to_bits(),
        Opcode::Mov => a,
        Opcode::I2F => (ia as f32).to_bits(),
        Opcode::F2I => {
            if fa.is_nan() {
                0
            } else {
                (fa as i32) as u32
            }
        }
        Opcode::Sfu(s) => match s {
            SfuOp::Rcp => (1.0 / fa).to_bits(),
            SfuOp::Rsqrt => (1.0 / fa.sqrt()).to_bits(),
            SfuOp::Sqrt => fa.sqrt().to_bits(),
            SfuOp::Sin => fa.sin().to_bits(),
            SfuOp::Cos => fa.cos().to_bits(),
            SfuOp::Ex2 => fa.exp2().to_bits(),
            SfuOp::Lg2 => fa.log2().to_bits(),
        },
        _ => return None,
    })
}

/// Scalar comparison, mirroring `rfh-sim`'s `eval_cmp`: float compare for
/// `fsetp`, signed integer compare for `setp`.
pub fn concrete_cmp(cmp: CmpOp, float: bool, a: u32, b: u32) -> bool {
    if float {
        let (x, y) = (f32::from_bits(a), f32::from_bits(b));
        match cmp {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    } else {
        let (x, y) = (a as i32, b as i32);
        match cmp {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    }
}

/// Clamps a mathematically exact `i64` interval to `i32` bounds; any
/// possible overflow widens to the full range (where the machine's
/// wrapping result is trivially contained).
fn clamp_range(lo: i64, hi: i64) -> (i32, i32) {
    if lo >= i32::MIN as i64 && hi <= i32::MAX as i64 {
        (lo as i32, hi as i32)
    } else {
        (i32::MIN, i32::MAX)
    }
}

/// Whether `v` is provably `32·q + lane` per lane: tid-affine with unit
/// coefficient and a 32-aligned offset (tid itself is `32·warp + lane`, so
/// the low five bits of the value are exactly the lane id).
fn lane_plus_aligned(v: &AbsVal) -> bool {
    matches!(v.affine, Some((1, o)) if o & 31 == 0)
}

fn add_fact(a: &AbsVal, b: &AbsVal, uniform: bool) -> AbsVal {
    let (lo, hi) = clamp_range(a.lo as i64 + b.lo as i64, a.hi as i64 + b.hi as i64);
    let affine = match (a.affine, b.affine) {
        (Some((k1, o1)), Some((k2, o2))) => Some((k1.wrapping_add(k2), o1.wrapping_add(o2))),
        _ => None,
    };
    AbsVal {
        lo,
        hi,
        affine,
        uniform,
    }
}

fn sub_fact(a: &AbsVal, b: &AbsVal, uniform: bool) -> AbsVal {
    let (lo, hi) = clamp_range(a.lo as i64 - b.hi as i64, a.hi as i64 - b.lo as i64);
    let affine = match (a.affine, b.affine) {
        (Some((k1, o1)), Some((k2, o2))) => Some((k1.wrapping_sub(k2), o1.wrapping_sub(o2))),
        _ => None,
    };
    AbsVal {
        lo,
        hi,
        affine,
        uniform,
    }
}

fn mul_fact(a: &AbsVal, b: &AbsVal, uniform: bool) -> AbsVal {
    let products = [
        a.lo as i64 * b.lo as i64,
        a.lo as i64 * b.hi as i64,
        a.hi as i64 * b.lo as i64,
        a.hi as i64 * b.hi as i64,
    ];
    let (mut pmin, mut pmax) = (products[0], products[0]);
    for p in products {
        pmin = pmin.min(p);
        pmax = pmax.max(p);
    }
    let (lo, hi) = clamp_range(pmin, pmax);
    // Scaling an affine form by a constant stays affine (exact mod 2³²).
    let affine = match (a.affine, b.affine) {
        (Some((k, o)), Some((0, c))) | (Some((0, c)), Some((k, o))) => {
            Some((k.wrapping_mul(c), o.wrapping_mul(c)))
        }
        _ => None,
    };
    AbsVal {
        lo,
        hi,
        affine,
        uniform,
    }
}

fn and_fact(a: &AbsVal, b: &AbsVal, uniform: bool) -> AbsVal {
    // Normalize to (value, constant mask) when one side is constant.
    let masked = match (a.as_const(), b.as_const()) {
        (_, Some(m)) => Some((a, m)),
        (Some(m), _) => Some((b, m)),
        _ => None,
    };
    if let Some((x, m)) = masked {
        // Masking away the lane bits of a `32·q + lane` value leaves a
        // warp-uniform result: every lane computes the same word.
        let u = uniform || (lane_plus_aligned(x) && m & 31 == 0);
        let mi = m as i32;
        if mi >= 0 {
            let hi = if x.lo >= 0 { x.hi.min(mi) } else { mi };
            return AbsVal {
                lo: 0,
                hi,
                affine: None,
                uniform: u,
            };
        }
        return AbsVal {
            affine: None,
            uniform: u,
            ..AbsVal::TOP
        };
    }
    if a.lo >= 0 && b.lo >= 0 {
        return AbsVal {
            lo: 0,
            hi: a.hi.min(b.hi),
            affine: None,
            uniform,
        };
    }
    AbsVal {
        affine: None,
        uniform,
        ..AbsVal::TOP
    }
}

fn or_xor_fact(a: &AbsVal, b: &AbsVal, uniform: bool) -> AbsVal {
    if a.lo >= 0 && b.lo >= 0 {
        // Neither or nor xor can set a bit above the highest bit of either
        // input: bound by the next all-ones pattern.
        let m = a.hi.max(b.hi) as u32;
        let hi = (m.wrapping_add(1).next_power_of_two().wrapping_sub(1)).min(i32::MAX as u32);
        return AbsVal {
            lo: 0,
            hi: hi as i32,
            affine: None,
            uniform,
        };
    }
    AbsVal {
        affine: None,
        uniform,
        ..AbsVal::TOP
    }
}

fn shl_fact(a: &AbsVal, b: &AbsVal, uniform: bool) -> AbsVal {
    if let Some(s) = b.as_const().map(|v| v & 31) {
        if s == 0 {
            return AbsVal { uniform, ..*a };
        }
        let (lo, hi) = clamp_range((a.lo as i64) << s, (a.hi as i64) << s);
        let affine = a
            .affine
            .map(|(k, o)| (k.wrapping_shl(s), o.wrapping_shl(s)));
        return AbsVal {
            lo,
            hi,
            affine,
            uniform,
        };
    }
    AbsVal {
        affine: None,
        uniform,
        ..AbsVal::TOP
    }
}

fn shr_fact(a: &AbsVal, b: &AbsVal, uniform: bool) -> AbsVal {
    if let Some(s) = b.as_const().map(|v| v & 31) {
        if s == 0 {
            return AbsVal { uniform, ..*a };
        }
        // Logical shift: the result always fits in [0, 2^(32-s) - 1].
        let base_hi = (u32::MAX >> s) as i32;
        let (lo, hi) = if a.lo >= 0 {
            (a.lo >> s, (a.hi >> s).min(base_hi))
        } else {
            (0, base_hi)
        };
        // Shifting the lane bits out of a `32·q + lane` value leaves a
        // warp-uniform result.
        let u = uniform || (s >= 5 && lane_plus_aligned(a));
        return AbsVal {
            lo,
            hi,
            affine: None,
            uniform: u,
        };
    }
    if a.lo >= 0 {
        // Any logical shift of a non-negative word stays in [0, value].
        return AbsVal {
            lo: 0,
            hi: a.hi,
            affine: None,
            uniform,
        };
    }
    AbsVal {
        affine: None,
        uniform,
        ..AbsVal::TOP
    }
}

/// The abstract transfer function for a pure-ALU destination claim.
fn alu_fact(op: Opcode, s: &[AbsVal; 3]) -> AbsVal {
    let n = op.num_srcs().min(3);
    let uniform = s.iter().take(n).all(|v| v.uniform);
    // Bit-exact fold when every used operand is a known constant. The
    // result is constant but only warp-uniform if the inputs were (a
    // singleton interval proves agreement among lanes reaching this point,
    // not across the warp).
    let consts: Vec<Option<u32>> = s.iter().take(n).map(AbsVal::as_const).collect();
    if consts.iter().all(Option::is_some) {
        let word = |i: usize| consts.get(i).copied().flatten().unwrap_or(0);
        if let Some(v) = concrete_alu(op, word(0), word(1), word(2)) {
            return AbsVal {
                uniform,
                ..AbsVal::constant(v)
            };
        }
    }
    let (a, b, c) = (&s[0], &s[1], &s[2]);
    let fact = match op {
        Opcode::Mov => AbsVal { uniform, ..*a },
        Opcode::IAdd => add_fact(a, b, uniform),
        Opcode::ISub => sub_fact(a, b, uniform),
        Opcode::IMul => mul_fact(a, b, uniform),
        Opcode::IMad => add_fact(&mul_fact(a, b, uniform), c, uniform),
        Opcode::IMin => AbsVal {
            lo: a.lo.min(b.lo),
            hi: a.hi.min(b.hi),
            affine: None,
            uniform,
        },
        Opcode::IMax => AbsVal {
            lo: a.lo.max(b.lo),
            hi: a.hi.max(b.hi),
            affine: None,
            uniform,
        },
        Opcode::And => and_fact(a, b, uniform),
        Opcode::Or | Opcode::Xor => or_xor_fact(a, b, uniform),
        Opcode::Shl => shl_fact(a, b, uniform),
        Opcode::Shr => shr_fact(a, b, uniform),
        // Floats, conversions, SFU: no interval reasoning over bit
        // patterns, but uniformity still propagates.
        _ => AbsVal {
            affine: None,
            uniform,
            ..AbsVal::TOP
        },
    };
    fact.normalized()
}

/// Decides an integer comparison from interval bounds, when provable for
/// every lane.
fn icmp_fact(cmp: CmpOp, a: &AbsVal, b: &AbsVal) -> Option<bool> {
    let lt = a.hi < b.lo;
    let le = a.hi <= b.lo;
    let gt = a.lo > b.hi;
    let ge = a.lo >= b.hi;
    let disjoint = a.hi < b.lo || b.hi < a.lo;
    let both_const_eq = match (a.as_const(), b.as_const()) {
        (Some(x), Some(y)) => Some(x == y),
        _ => None,
    };
    match cmp {
        CmpOp::Eq => match both_const_eq {
            Some(true) => Some(true),
            _ if disjoint => Some(false),
            _ => None,
        },
        CmpOp::Ne => match both_const_eq {
            Some(true) => Some(false),
            _ if disjoint => Some(true),
            _ => None,
        },
        CmpOp::Lt => {
            if lt {
                Some(true)
            } else if ge {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Le => {
            if le {
                Some(true)
            } else if gt {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Gt => {
            if gt {
                Some(true)
            } else if le {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Ge => {
            if ge {
                Some(true)
            } else if lt {
                Some(false)
            } else {
                None
            }
        }
    }
}

/// How many lanes (of those reaching the instruction) execute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Exec {
    All,
    None,
    Maybe,
}

/// Interprets one block over `env`, optionally recording per-instruction
/// facts. `div` marks the block as inside a divergence region: writes
/// there never produce warp-uniform state.
fn run_block(
    kernel: &Kernel,
    ctx: AbsCtx,
    b: BlockId,
    env: &mut Env,
    div: bool,
    mut record: Option<&mut Vec<InstrFacts>>,
) {
    if let Some(rec) = record.as_deref_mut() {
        rec.clear();
    }
    for ins in &kernel.block(b).instrs {
        let mut srcs = [AbsVal::TOP; 3];
        for (i, op) in ins.srcs.iter().take(3).enumerate() {
            srcs[i] = operand_fact(*op, env, ctx);
        }
        let guard_fact = ins.guard.map(|g| pred_fact(env, g.reg));
        let exec = match ins.guard {
            None => Exec::All,
            Some(g) => match pred_fact(env, g.reg).known {
                Some(v) if v != g.negated => Exec::All,
                Some(_) => Exec::None,
                None => Exec::Maybe,
            },
        };

        let (dst_claim, dst_hi_claim) = match (ins.dst, ins.op) {
            (None, _) => (None, None),
            (Some(d), Opcode::Ld(space)) => {
                // A warp-uniform address loads the same word on every
                // executing lane — except in per-thread local memory.
                let uni = srcs[0].uniform && !matches!(space, Space::Local);
                let c = AbsVal {
                    affine: None,
                    uniform: uni,
                    ..AbsVal::TOP
                };
                (Some(c), (d.width == Width::W64).then_some(c))
            }
            (Some(d), Opcode::Tex) => (
                Some(AbsVal::TOP),
                (d.width == Width::W64).then_some(AbsVal::TOP),
            ),
            (Some(d), Opcode::Sel) => {
                let p = ins.psrc.map(|p| pred_fact(env, p)).unwrap_or(PredAbs::TOP);
                let c = match p.known {
                    Some(true) => srcs[0],
                    Some(false) => srcs[1],
                    None => {
                        let j = srcs[0].join(&srcs[1]);
                        AbsVal {
                            uniform: j.uniform && p.uniform,
                            ..j
                        }
                    }
                };
                (Some(c), (d.width == Width::W64).then_some(AbsVal::TOP))
            }
            (Some(d), op) => (
                Some(alu_fact(op, &srcs)),
                (d.width == Width::W64).then_some(AbsVal::TOP),
            ),
        };

        let pdst_claim = match ins.op {
            Opcode::Setp(cmp) => Some(PredAbs {
                uniform: srcs[0].uniform && srcs[1].uniform,
                known: icmp_fact(cmp, &srcs[0], &srcs[1]),
            }),
            Opcode::FSetp(cmp) => {
                let known = match (srcs[0].as_const(), srcs[1].as_const()) {
                    (Some(x), Some(y)) => Some(concrete_cmp(cmp, true, x, y)),
                    _ => None,
                };
                Some(PredAbs {
                    uniform: srcs[0].uniform && srcs[1].uniform,
                    known,
                })
            }
            _ => None,
        };

        if let Some(rec) = record.as_deref_mut() {
            rec.push(InstrFacts {
                srcs,
                dst: dst_claim,
                dst_hi: dst_hi_claim,
                pdst: pdst_claim,
                guard: guard_fact,
                reachable: exec != Exec::None,
            });
        }

        if exec == Exec::None {
            continue;
        }

        if ins.op.is_exit() {
            // A guarded exit filters the warp: every surviving lane's
            // guard predicate provably failed the guard.
            if let Some(g) = ins.guard {
                if let Some(p) = env.preds.get_mut(g.reg.index() as usize) {
                    p.known = Some(g.negated);
                }
            }
            continue;
        }

        let guard_uniform = guard_fact.map(|g| g.uniform).unwrap_or(true);
        if let (Some(d), Some(c0)) = (ins.dst, dst_claim) {
            for (wi, r) in d.regs().enumerate() {
                let claim = if wi == 0 {
                    c0
                } else {
                    dst_hi_claim.unwrap_or(AbsVal::TOP)
                };
                let idx = r.index() as usize;
                if idx >= env.regs.len() {
                    continue;
                }
                let old = env.regs[idx];
                env.regs[idx] = match exec {
                    Exec::All => AbsVal {
                        uniform: claim.uniform && !div,
                        ..claim
                    },
                    Exec::Maybe => AbsVal {
                        uniform: old.uniform && claim.uniform && guard_uniform && !div,
                        ..old.join(&claim)
                    },
                    Exec::None => old,
                };
            }
        }
        if let (Some(p), Some(pc)) = (ins.pdst, pdst_claim) {
            let idx = p.index() as usize;
            if idx < env.preds.len() {
                let old = env.preds[idx];
                env.preds[idx] = match exec {
                    Exec::All => PredAbs {
                        uniform: pc.uniform && !div,
                        ..pc
                    },
                    Exec::Maybe => PredAbs {
                        uniform: old.uniform && pc.uniform && guard_uniform && !div,
                        known: if old.known == pc.known {
                            pc.known
                        } else {
                            None
                        },
                    },
                    Exec::None => old,
                };
            }
        }
    }
}

/// The out-edges of a block as `(successor, is_taken_edge)`; only a guarded
/// branch's first successor counts as a refinable taken edge.
fn out_edges(kernel: &Kernel, b: BlockId) -> Vec<(BlockId, bool)> {
    let guarded_bra = kernel
        .block(b)
        .instrs
        .last()
        .map(|t| t.op.is_branch() && t.guard.is_some())
        .unwrap_or(false);
    kernel
        .successors(b)
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, guarded_bra && i == 0))
        .collect()
}

/// Flips a comparison for swapped operands (`k < r` ⇔ `r > k`).
fn flip_cmp(cmp: CmpOp) -> CmpOp {
    match cmp {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

/// Finds the in-block provenance of a branch guard: the last write to
/// `pred` must be an unguarded integer `setp` comparing a register against
/// a constant, with the register not redefined before the terminator.
/// Returns `(reg, cmp, k)` normalized to `reg cmp k`.
fn setp_provenance(
    kernel: &Kernel,
    b: BlockId,
    pred: PredReg,
) -> Option<(rfh_isa::Reg, CmpOp, i32)> {
    let instrs = &kernel.block(b).instrs;
    let n = instrs.len();
    let (idx, setp) = instrs[..n.saturating_sub(1)]
        .iter()
        .enumerate()
        .rev()
        .find(|(_, i)| i.pdst == Some(pred))?;
    if setp.guard.is_some() {
        return None;
    }
    let Opcode::Setp(cmp) = setp.op else {
        return None;
    };
    let (a, b_op) = (setp.srcs.first()?, setp.srcs.get(1)?);
    let (reg, cmp, k) = match (a.as_reg(), a.const_bits(), b_op.as_reg(), b_op.const_bits()) {
        (Some(r), _, None, Some(k)) => (r, cmp, k as i32),
        (None, Some(k), Some(r), _) => (r, flip_cmp(cmp), k as i32),
        _ => return None,
    };
    // The compared register must still hold the same value at the branch.
    let redefined = instrs[idx + 1..n.saturating_sub(1)]
        .iter()
        .any(|i| i.def_regs().any(|d| d == reg));
    if redefined {
        return None;
    }
    Some((reg, cmp, k))
}

/// Intersects interval `v` with the constraint `v cmp k == holds`.
/// Returns `None` when the constraint is unsatisfiable (the edge is dead).
fn narrow_by_cmp(v: AbsVal, cmp: CmpOp, k: i32, holds: bool) -> Option<AbsVal> {
    let (mut lo, mut hi) = (v.lo, v.hi);
    match (cmp, holds) {
        (CmpOp::Lt, true) => hi = hi.min(k.checked_sub(1)?),
        (CmpOp::Lt, false) => lo = lo.max(k),
        (CmpOp::Le, true) => hi = hi.min(k),
        (CmpOp::Le, false) => lo = lo.max(k.checked_add(1)?),
        (CmpOp::Gt, true) => lo = lo.max(k.checked_add(1)?),
        (CmpOp::Gt, false) => hi = hi.min(k),
        (CmpOp::Ge, true) => lo = lo.max(k),
        (CmpOp::Ge, false) => hi = hi.min(k.checked_sub(1)?),
        (CmpOp::Eq, true) | (CmpOp::Ne, false) => {
            lo = lo.max(k);
            hi = hi.min(k);
        }
        (CmpOp::Eq, false) | (CmpOp::Ne, true) => {
            if lo == hi && lo == k {
                return None;
            }
            if lo == k {
                lo = lo.checked_add(1)?;
            }
            if hi == k {
                hi = hi.checked_sub(1)?;
            }
        }
    }
    if lo > hi {
        return None;
    }
    Some(AbsVal { lo, hi, ..v }.normalized())
}

/// Refines the post-block environment along one out-edge. `None` means no
/// lane can take the edge. Refinement only sharpens per-lane claims (the
/// guard's value on this edge and, via `setp` provenance, the compared
/// register's interval) — never uniformity.
fn refine_edge(kernel: &Kernel, b: BlockId, env: &Env, taken: bool) -> Option<Env> {
    let Some(term) = kernel.block(b).instrs.last() else {
        return Some(env.clone());
    };
    if !term.op.is_branch() {
        return Some(env.clone());
    }
    let Some(g) = term.guard else {
        return Some(env.clone());
    };
    // The taken edge requires the guard to pass (pred != negated).
    let required = taken != g.negated;
    let pi = g.reg.index() as usize;
    if pred_fact(env, g.reg).known == Some(!required) {
        return None;
    }
    let mut e = env.clone();
    if let Some(p) = e.preds.get_mut(pi) {
        p.known = Some(required);
    }
    if let Some((reg, cmp, k)) = setp_provenance(kernel, b, g.reg) {
        let ri = reg.index() as usize;
        if let Some(v) = e.regs.get(ri).copied() {
            match narrow_by_cmp(v, cmp, k, required) {
                Some(nv) => e.regs[ri] = nv,
                None => return None,
            }
        }
    }
    Some(e)
}

/// Whether the block's terminator is a guarded branch that may split the
/// warp, given the post-block environment.
fn branch_diverges(kernel: &Kernel, b: BlockId, env: &Env) -> bool {
    match kernel.block(b).instrs.last() {
        Some(t) if t.op.is_branch() => match t.guard {
            Some(g) => !pred_fact(env, g.reg).never_diverges(),
            None => false,
        },
        _ => false,
    }
}

/// The blocks a divergent branch at `b` can leave partially-active warps
/// in: everything reachable from `b`'s successors without passing through
/// `b`'s immediate post-dominator (the reconvergence point).
fn divergence_region(kernel: &Kernel, pdom: &DomTree, b: BlockId) -> Vec<usize> {
    let stop = pdom.idom(b);
    let mut seen = vec![false; kernel.blocks.len()];
    let mut stack: Vec<BlockId> = kernel.successors(b);
    let mut out = Vec::new();
    while let Some(n) = stack.pop() {
        if Some(n) == stop {
            continue;
        }
        let i = n.index();
        if seen[i] {
            continue;
        }
        seen[i] = true;
        out.push(i);
        stack.extend(kernel.successors(n));
    }
    out
}

/// Collects widening landmarks: the constants the kernel compares against
/// (±1 for strict/inclusive bound conversions), plus zero. Sorted and
/// deduplicated.
fn collect_landmarks(kernel: &Kernel) -> Vec<i32> {
    let mut out = vec![0];
    for (_, ins) in kernel.iter_instrs() {
        if matches!(ins.op, Opcode::Setp(_)) {
            for op in &ins.srcs {
                if let Some(k) = op.const_bits() {
                    let k = k as i32;
                    out.push(k);
                    out.extend(k.checked_sub(1));
                    out.extend(k.checked_add(1));
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Runs the abstract interpreter to a fixpoint and records per-instruction
/// facts for every reachable block.
///
/// Loops converge through widening (interval bounds escape to ±∞ after a
/// few visits); an iteration cap backstops pathological CFGs by falling
/// back to the trivially sound top state.
pub fn analyze(kernel: &Kernel, ctx: AbsCtx) -> AbsResults {
    let nb = kernel.blocks.len();
    let mut results = AbsResults {
        facts: kernel
            .blocks
            .iter()
            .map(|b| vec![InstrFacts::unreachable(); b.instrs.len()])
            .collect(),
        block_reachable: vec![false; nb],
        dead_edges: Vec::new(),
    };
    if nb == 0 {
        return results;
    }
    let nr = kernel.num_regs() as usize;
    let np = kernel.num_preds() as usize;
    let pdom = DomTree::post_dominators(kernel);
    let entry = kernel.entry();
    let landmarks = collect_landmarks(kernel);

    let mut in_env: Vec<Option<Env>> = vec![None; nb];
    in_env[entry.index()] = Some(Env::top(nr, np));
    let mut divergent = vec![false; nb];
    let mut visits = vec![0u32; nb];
    const WIDEN_AFTER: u32 = 4;
    let max_iters = 64 + 16 * nb;

    let mut iters = 0;
    let mut stable = false;
    while !stable && iters <= max_iters {
        iters += 1;
        stable = true;
        for bi in 0..nb {
            let Some(env0) = in_env[bi].clone() else {
                continue;
            };
            let id = BlockId::new(bi as u32);
            let mut env = env0;
            run_block(kernel, ctx, id, &mut env, divergent[bi], None);
            if branch_diverges(kernel, id, &env) {
                for r in divergence_region(kernel, &pdom, id) {
                    if !divergent[r] {
                        divergent[r] = true;
                        stable = false;
                    }
                }
            }
            for (succ, taken) in out_edges(kernel, id) {
                let Some(e) = refine_edge(kernel, id, &env, taken) else {
                    continue;
                };
                let si = succ.index();
                match &mut in_env[si] {
                    None => {
                        in_env[si] = Some(e);
                        visits[si] += 1;
                        stable = false;
                    }
                    Some(cur) => {
                        if cur.join_from(&e, visits[si] >= WIDEN_AFTER, &landmarks) {
                            visits[si] += 1;
                            stable = false;
                        }
                    }
                }
            }
        }
    }
    if !stable {
        // The cap fired: fall back to the trivially sound answer — every
        // CFG-reachable block gets the top state and counts as divergent.
        let mut stack = vec![entry];
        let mut seen = vec![false; nb];
        while let Some(n) = stack.pop() {
            if seen[n.index()] {
                continue;
            }
            seen[n.index()] = true;
            in_env[n.index()] = Some(Env::top(nr, np));
            stack.extend(kernel.successors(n));
        }
        for (i, d) in divergent.iter_mut().enumerate() {
            *d = seen[i];
        }
    }

    // Final pass: record facts and collect dead edges from the fixpoint.
    for bi in 0..nb {
        let Some(env0) = in_env[bi].clone() else {
            continue;
        };
        results.block_reachable[bi] = true;
        let id = BlockId::new(bi as u32);
        let mut env = env0;
        run_block(
            kernel,
            ctx,
            id,
            &mut env,
            divergent[bi],
            Some(&mut results.facts[bi]),
        );
        for (succ, taken) in out_edges(kernel, id) {
            if refine_edge(kernel, id, &env, taken).is_none() {
                results.dead_edges.push(DeadEdge {
                    from: id,
                    to: succ,
                    taken,
                });
            }
        }
    }
    results
}

pub mod last_use {
    //! Compiler-assisted last-use hints (Abaie Shoushtary 2023 direction):
    //! operand reads that provably observe an in-strand *guarded*
    //! definition under the same guard, rather than the value flowing in
    //! from outside. Such *covered* reads are not upward-exposed uses, so
    //! a refined liveness can mark strictly more reads dead-after-read and
    //! the allocator can keep the value out of the MRF entirely.
    //!
    //! Coverage is deliberately strand-local (the map resets at every
    //! `ends_strand` instruction): the allocator's per-strand value
    //! machinery may only attach a covered read to a definition in the
    //! *same* strand, since inter-strand communication must go through the
    //! MRF (paper §4.1). Callers must therefore run strand marking before
    //! [`analyze`].

    use std::collections::HashMap;

    use rfh_isa::{InstrRef, Kernel, PredReg, Reg};

    use crate::liveness::{annotate_dead_excluding, ExcludedReads, Liveness};

    /// Last-use hints for one kernel: the covered reads, the matching
    /// excluded-read set, and the refined liveness built with it.
    #[derive(Debug, Clone)]
    pub struct LastUseHints {
        /// Covered reads, `(read instruction, source-operand index)` →
        /// the covering in-strand guarded definition.
        pub covered: HashMap<(InstrRef, usize), InstrRef>,
        /// The covered reads as a liveness exclusion set.
        pub excluded: ExcludedReads,
        /// Liveness computed with the covered reads excluded from `gen`.
        pub liveness: Liveness,
    }

    impl LastUseHints {
        /// Rewrites the kernel's `dead_after` flags under the refined
        /// liveness: covered reads no longer keep their register live, so
        /// strictly more reads are marked as last uses.
        pub fn apply_dead_flags(&self, kernel: &mut Kernel) {
            annotate_dead_excluding(kernel, &self.liveness, &self.excluded);
        }
    }

    /// Computes last-use hints. Requires `ends_strand` bits to be present
    /// (run `strand::mark_strands` first); without them, coverage would
    /// leak across strand boundaries and the hints would be unsound for
    /// the allocator.
    pub fn analyze(kernel: &Kernel) -> LastUseHints {
        let mut covered: HashMap<(InstrRef, usize), InstrRef> = HashMap::new();
        for b in &kernel.blocks {
            // Registers whose current value was written by a guarded def
            // in this block and strand, keyed by the exact guard.
            let mut cover: HashMap<Reg, (PredReg, bool, InstrRef)> = HashMap::new();
            for (index, ins) in b.instrs.iter().enumerate() {
                let at = InstrRef { block: b.id, index };
                if let Some(g) = ins.guard {
                    for (slot, r) in ins.reg_srcs() {
                        if let Some((pp, neg, site)) = cover.get(&r) {
                            if *pp == g.reg && *neg == g.negated {
                                covered.insert((at, slot.index()), *site);
                            }
                        }
                    }
                }
                match ins.guard {
                    Some(g) => {
                        for r in ins.def_regs() {
                            cover.insert(r, (g.reg, g.negated, at));
                        }
                    }
                    None => {
                        for r in ins.def_regs() {
                            cover.remove(&r);
                        }
                    }
                }
                // Redefining the predicate breaks the guard equivalence.
                if let Some(p) = ins.pdst {
                    cover.retain(|_, (pp, _, _)| *pp != p);
                }
                // Inter-strand values go through the MRF: never cover
                // across a strand endpoint.
                if ins.ends_strand {
                    cover.clear();
                }
            }
        }
        let excluded: ExcludedReads = covered.keys().copied().collect();
        let liveness = Liveness::compute_excluding(kernel, &excluded);
        LastUseHints {
            covered,
            excluded,
            liveness,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_isa::parse_kernel;

    fn at(b: u32, i: usize) -> InstrRef {
        InstrRef {
            block: BlockId::new(b),
            index: i,
        }
    }

    fn ctx256() -> AbsCtx {
        AbsCtx {
            threads_per_cta: Some(256),
            ctas: Some(4),
        }
    }

    #[test]
    fn constant_folding_chain() {
        let k = parse_kernel(
            "
.kernel cf
BB0:
  mov r0, 5
  iadd r1 r0, 6
  shl r2 r1, 2
  imad r3 r2, 2, r1
  st.global r0, r3
  exit
",
        )
        .unwrap();
        let r = analyze(&k, AbsCtx::default());
        assert_eq!(r.fact(at(0, 1)).dst.unwrap().as_const(), Some(11));
        assert_eq!(r.fact(at(0, 2)).dst.unwrap().as_const(), Some(44));
        assert_eq!(r.fact(at(0, 3)).dst.unwrap().as_const(), Some(99));
        assert!(r.fact(at(0, 3)).dst.unwrap().uniform);
    }

    #[test]
    fn tid_affine_and_shift_uniformity() {
        let k = parse_kernel(
            "
.kernel tu
BB0:
  mov r0, %tid.x
  shr r1 r0, 5
  and r2 r0, 31
  and r3 r0, -32
  iadd r4 r0, r0
  st.global r0, r4
  exit
",
        )
        .unwrap();
        let r = analyze(&k, ctx256());
        let tid = r.fact(at(0, 0)).dst.unwrap();
        assert_eq!((tid.lo, tid.hi), (0, 255));
        assert_eq!(tid.affine, Some((1, 0)));
        assert!(!tid.uniform);
        // tid >> 5 is the warp id: warp-uniform.
        assert!(r.fact(at(0, 1)).dst.unwrap().uniform);
        // tid & 31 is the lane id: bounded but divergent.
        let lane = r.fact(at(0, 2)).dst.unwrap();
        assert!(!lane.uniform);
        assert_eq!((lane.lo, lane.hi), (0, 31));
        // tid & ~31 masks away the lane bits: warp-uniform.
        assert!(r.fact(at(0, 3)).dst.unwrap().uniform);
        // tid + tid = 2·tid, still affine.
        assert_eq!(r.fact(at(0, 4)).dst.unwrap().affine, Some((2, 0)));
    }

    #[test]
    fn branch_edges_narrow_intervals() {
        let k = parse_kernel(
            "
.kernel nr
BB0:
  mov r0, %tid.x
  setp.lt p0 r0, 10
  @p0 bra BB2
BB1:
  st.global r0, r0
  exit
BB2:
  st.global r0, r0
  exit
",
        )
        .unwrap();
        let r = analyze(&k, ctx256());
        // Fall-through: the compare failed, so r0 >= 10.
        let fall = r.fact(at(1, 0)).srcs[0];
        assert_eq!((fall.lo, fall.hi), (10, 255));
        // Taken: r0 < 10.
        let taken = r.fact(at(2, 0)).srcs[0];
        assert_eq!((taken.lo, taken.hi), (0, 9));
        assert!(r.dead_edges.is_empty());
    }

    #[test]
    fn counted_loop_converges_to_trip_bounds() {
        let k = parse_kernel(
            "
.kernel lp
BB0:
  mov r0, 0
BB1:
  iadd r0 r0, 1
  setp.lt p0 r0, 10
  @p0 bra BB1
BB2:
  st.global r0, r0
  exit
",
        )
        .unwrap();
        let r = analyze(&k, AbsCtx::default());
        // In the body, r0 ∈ [0, 9] (entry 0, backedge narrowed to < 10).
        let body = r.fact(at(1, 0)).srcs[0];
        assert_eq!((body.lo, body.hi), (0, 9));
        // After the loop, r0 ∈ [1, 10] and the compare failed.
        let after = r.fact(at(2, 0)).srcs[0];
        assert_eq!((after.lo, after.hi), (10, 10));
    }

    #[test]
    fn widening_terminates_unbounded_loop() {
        let k = parse_kernel(
            "
.kernel wd
BB0:
  mov r0, 0
  mov r1, %tid.x
BB1:
  iadd r0 r0, 1
  setp.lt p0 r0, r1
  @p0 bra BB1
BB2:
  st.global r0, r0
  exit
",
        )
        .unwrap();
        let r = analyze(&k, AbsCtx::default());
        // No constant bound: widening must still terminate with lo >= 0
        // never provable after the widening jump — just check sanity.
        let body = r.fact(at(1, 0)).srcs[0];
        assert!(body.lo <= 0 && body.hi >= 1, "{body:?}");
    }

    #[test]
    fn dead_edge_detection() {
        let k = parse_kernel(
            "
.kernel de
BB0:
  mov r0, 3
  setp.lt p0 r0, 10
  @p0 bra BB2
BB1:
  st.global r0, r0
  exit
BB2:
  st.global r0, r0
  exit
",
        )
        .unwrap();
        let r = analyze(&k, AbsCtx::default());
        assert!(!r.block_reachable[1], "fall-through is dead");
        assert!(r.block_reachable[2]);
        assert_eq!(
            r.dead_edges,
            vec![DeadEdge {
                from: BlockId::new(0),
                to: BlockId::new(1),
                taken: false,
            }]
        );
    }

    #[test]
    fn divergence_kills_uniformity_at_join() {
        let k = parse_kernel(
            "
.kernel dv
BB0:
  mov r0, %tid.x
  setp.lt p0 r0, 10
  @p0 bra BB2
BB1:
  mov r1, 5
  bra BB3
BB2:
  mov r1, 7
BB3:
  mov r2, r1
  st.global r0, r2
  exit
",
        )
        .unwrap();
        let r = analyze(&k, ctx256());
        // Each side writes a constant, but the branch diverges: the merged
        // value must not be claimed warp-uniform.
        let merged = r.fact(at(3, 0)).dst.unwrap();
        assert!(!merged.uniform, "{merged:?}");
        assert_eq!((merged.lo, merged.hi), (5, 7));
    }

    #[test]
    fn uniform_branch_keeps_uniformity_at_join() {
        let k = parse_kernel(
            "
.kernel uv
BB0:
  mov r0, %ctaid.x
  setp.lt p0 r0, 2
  @p0 bra BB2
BB1:
  mov r1, 5
  bra BB3
BB2:
  mov r1, 7
BB3:
  mov r2, r1
  st.global r2, r2
  exit
",
        )
        .unwrap();
        let r = analyze(&k, ctx256());
        // The guard is warp-uniform (ctaid-derived): the whole warp takes
        // one side, so the merged value is warp-uniform.
        assert!(r.fact(at(0, 2)).guard.unwrap().uniform);
        let merged = r.fact(at(3, 0)).dst.unwrap();
        assert!(merged.uniform, "{merged:?}");
    }

    #[test]
    fn guarded_exit_filters_survivors() {
        let k = parse_kernel(
            "
.kernel ge
BB0:
  mov r0, %tid.x
  setp.ge p0 r0, 128
  @p0 exit
  @p0 mov r1, 1
  @!p0 mov r2, 2
  st.global r0, r2
  exit
",
        )
        .unwrap();
        let r = analyze(&k, ctx256());
        // After `@p0 exit`, survivors have p0 == false.
        assert!(!r.fact(at(0, 3)).reachable, "@p0 instr never executes");
        assert!(r.fact(at(0, 4)).reachable, "@!p0 instr always executes");
    }

    #[test]
    fn interval_transfer_is_sound_on_concrete_samples() {
        // Pointwise soundness of the binary transfer functions: for
        // sampled concrete operands inside sampled intervals, the result
        // of the mirrored evaluator stays inside the abstract result.
        let samples: [i32; 7] = [i32::MIN, -100, -1, 0, 1, 100, i32::MAX];
        let ops = [
            Opcode::IAdd,
            Opcode::ISub,
            Opcode::IMul,
            Opcode::IMin,
            Opcode::IMax,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Shl,
            Opcode::Shr,
        ];
        for &xa in &samples {
            for &xb in &samples {
                for &ya in &samples {
                    for &yb in &samples {
                        if xa > xb || ya > yb {
                            continue;
                        }
                        let a = AbsVal {
                            lo: xa,
                            hi: xb,
                            affine: None,
                            uniform: false,
                        };
                        let b = AbsVal {
                            lo: ya,
                            hi: yb,
                            affine: None,
                            uniform: false,
                        };
                        for op in ops {
                            let f = alu_fact(op, &[a, b, AbsVal::TOP]);
                            // Concrete operands at the interval corners.
                            for (x, y) in [(xa, ya), (xa, yb), (xb, ya), (xb, yb)] {
                                let v = concrete_alu(op, x as u32, y as u32, 0).unwrap() as i32;
                                assert!(
                                    f.lo <= v && v <= f.hi,
                                    "{op:?} [{xa},{xb}]x[{ya},{yb}] -> {v} not in [{},{}]",
                                    f.lo,
                                    f.hi
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn narrow_by_cmp_edge_cases() {
        let v = AbsVal {
            lo: 0,
            hi: 10,
            affine: None,
            uniform: false,
        };
        let n = narrow_by_cmp(v, CmpOp::Lt, 5, true).unwrap();
        assert_eq!((n.lo, n.hi), (0, 4));
        let n = narrow_by_cmp(v, CmpOp::Lt, 5, false).unwrap();
        assert_eq!((n.lo, n.hi), (5, 10));
        assert!(narrow_by_cmp(v, CmpOp::Gt, 10, true).is_none());
        let n = narrow_by_cmp(v, CmpOp::Eq, 7, true).unwrap();
        assert_eq!(n.as_const(), Some(7));
        // x < i32::MIN is unsatisfiable, not a wrap.
        assert!(narrow_by_cmp(v, CmpOp::Lt, i32::MIN, true).is_none());
        let single = AbsVal {
            lo: 3,
            hi: 3,
            affine: None,
            uniform: false,
        };
        assert!(narrow_by_cmp(single, CmpOp::Ne, 3, true).is_none());
    }

    #[test]
    fn last_use_covers_same_guard_chain() {
        let mut k = parse_kernel(
            "
.kernel lu
BB0:
  mov r5, %tid.x
  setp.lt p0 r5, 8
  @p0 ld.shared r6 r5
  @p0 fadd r8 r6, r6
  @p0 st.shared r5, r8
  exit
",
        )
        .unwrap();
        crate::strand::mark_strands(&mut k);
        let hints = last_use::analyze(&k);
        // The @p0 reads of r6 and r8 observe the in-strand @p0 defs.
        assert_eq!(hints.covered.get(&(at(0, 3), 0)), Some(&at(0, 2)));
        assert_eq!(hints.covered.get(&(at(0, 3), 1)), Some(&at(0, 2)));
        assert_eq!(hints.covered.get(&(at(0, 4), 1)), Some(&at(0, 3)));
        // The unguarded read of r5 by the setp is not covered.
        assert!(!hints.covered.contains_key(&(at(0, 1), 0)));
        // Refined liveness: r6 is no longer live-in (its only reads are
        // covered); r5 still is.
        assert!(!hints.liveness.live_in[0].contains(rfh_isa::Reg::new(6)));
    }

    #[test]
    fn last_use_respects_strand_and_pred_boundaries() {
        let mut k = parse_kernel(
            "
.kernel lb
BB0:
  setp.lt p0 r0, 8
  @p0 mov r1, 1
  setp.lt p0 r0, 4
  @p0 iadd r2 r1, 1
  @p0 mov r3, 2
  ld.global r4 r0
  @p0 iadd r5 r3, r4
  exit
",
        )
        .unwrap();
        crate::strand::mark_strands(&mut k);
        let hints = last_use::analyze(&k);
        // The read of r1 at index 3 follows a redefinition of p0: the
        // guard equivalence is broken, no coverage.
        assert!(!hints.covered.contains_key(&(at(0, 3), 0)));
        // The read of r3 at index 6 crosses the long-latency strand split
        // before it (consumer of r4): no coverage across strands.
        assert!(!hints.covered.contains_key(&(at(0, 6), 0)));
    }

    #[test]
    fn unreachable_blocks_have_unreachable_facts() {
        let k = parse_kernel(
            "
.kernel ur
BB0:
  mov r0, 1
  bra BB2
BB1:
  iadd r1 r0, 1
BB2:
  st.global r0, r0
  exit
",
        )
        .unwrap();
        let r = analyze(&k, AbsCtx::default());
        assert!(r.block_reachable[0]);
        assert!(!r.block_reachable[1]);
        assert!(r.block_reachable[2]);
        assert!(!r.fact(at(1, 0)).reachable);
    }
}
