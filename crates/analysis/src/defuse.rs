//! Per-strand value instances, read-operand ranges, and merge groups.
//!
//! The allocator (paper §4) operates on *register instances*: a definition
//! together with the reads it reaches inside its strand. Because the IR is
//! pseudo-SSA without phi nodes, a read at a control-flow merge may be
//! reached by several definitions (a value written on both sides of a
//! hammock, Figure 10); such definitions form a *merge group* that must be
//! co-allocated to the same ORF entry for the merge read to be served by
//! the ORF (Figure 10c). When one of the reaching "definitions" is the
//! strand live-in (Figure 10a/b), the merge read must come from the MRF
//! and is excluded from the allocable reads.
//!
//! Values read in a strand but not written in it become *read operand*
//! ranges (§4.4), candidates for read operand allocation.
//!
//! The in-strand subgraph of a strand contains only forward edges (backward
//! branches end strands), so reaching definitions are computed in a single
//! layout-order pass without iteration.

use std::collections::{BTreeSet, HashMap};

use rfh_isa::{InstrRef, Kernel, Reg, Slot, Unit, Width};

use crate::absint::last_use::LastUseHints;
use crate::liveness::Liveness;
use crate::strand::{StrandId, StrandInfo};

/// One read of a value: where, which slot, which register word, and at
/// which layout position within the strand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRef {
    /// The reading instruction.
    pub at: InstrRef,
    /// The operand slot occupied by the read.
    pub slot: Slot,
    /// The register word read (for 64-bit instances this may be the high
    /// half, `root + 1`).
    pub reg: Reg,
    /// Layout position within the strand (0-based instruction index).
    pub pos: usize,
    /// The function unit consuming the value (LRF reads require the
    /// private datapath).
    pub unit: Unit,
}

/// A definition and the reads it reaches within its strand.
#[derive(Debug, Clone)]
pub struct ValueInstance {
    /// Dense id within the strand.
    pub id: usize,
    /// The defining instruction.
    pub def: InstrRef,
    /// Layout position of the definition within the strand.
    pub def_pos: usize,
    /// The root destination register.
    pub reg: Reg,
    /// Width of the produced value (64-bit values occupy two hierarchy
    /// entries).
    pub width: Width,
    /// Whether the producer executes on the shared datapath (such values
    /// cannot be written to the LRF, §3.2).
    pub produced_on_shared: bool,
    /// Reads served by this instance that the allocator may place in the
    /// ORF/LRF (merge reads tainted by live-in values are excluded).
    pub reads: Vec<ReadRef>,
    /// Whether the value is (possibly) read after the strand ends and must
    /// therefore also be written to the MRF (§4.2).
    pub live_out: bool,
    /// Merge group id; instances sharing a group must be co-allocated.
    pub group: usize,
}

impl ValueInstance {
    /// The layout position of the last allocable read, or the definition
    /// position when there are none.
    pub fn last_read_pos(&self) -> usize {
        self.reads
            .iter()
            .map(|r| r.pos)
            .max()
            .unwrap_or(self.def_pos)
    }

    /// Whether any allocable read occurs on the shared datapath.
    pub fn has_shared_reads(&self) -> bool {
        self.reads.iter().any(|r| r.unit.is_shared())
    }
}

/// A value read in the strand but produced before it (§4.4).
#[derive(Debug, Clone)]
pub struct ReadOperand {
    /// The register holding the live-in value.
    pub reg: Reg,
    /// All reads reached exclusively by the live-in value, in layout order.
    pub reads: Vec<ReadRef>,
}

/// The def-use summary of one strand: the allocator's input.
#[derive(Debug, Clone)]
pub struct StrandValues {
    /// Which strand this summarizes.
    pub strand: StrandId,
    /// Value instances defined in the strand.
    pub instances: Vec<ValueInstance>,
    /// Live-in read-operand ranges.
    pub read_operands: Vec<ReadOperand>,
    /// Merge groups: instance ids per group (singletons included), indexed
    /// by group id.
    pub groups: Vec<Vec<usize>>,
    /// Number of instructions in the strand.
    pub len: usize,
}

/// A reaching definition: either the strand live-in state or an in-strand
/// instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Def {
    LiveIn,
    Inst(usize),
}

#[derive(Default)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn make(&mut self) -> usize {
        self.parent.push(self.parent.len());
        self.parent.len() - 1
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
            root
        } else {
            x
        }
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

/// Computes the def-use summary for strand `sid`.
///
/// # Panics
///
/// Panics if `sid` is out of range for `info`.
pub fn strand_values(
    kernel: &Kernel,
    info: &StrandInfo,
    liveness: &Liveness,
    sid: StrandId,
) -> StrandValues {
    strand_values_opts(kernel, info, liveness, sid, None)
}

/// [`strand_values`] with optional last-use hints. A *covered* read (see
/// [`crate::absint::last_use`]) provably observes a specific in-strand
/// guarded definition, so it attaches to that instance directly instead of
/// being tainted by the strand live-in; exit liveness uses the hints'
/// refined (read-excluding) queries, so values whose only downstream reads
/// are covered need no MRF copy. When `hints` is `Some`, `liveness` must
/// be the hints' own refined liveness.
///
/// # Panics
///
/// Panics if `sid` is out of range for `info`.
pub fn strand_values_opts(
    kernel: &Kernel,
    info: &StrandInfo,
    liveness: &Liveness,
    sid: StrandId,
    hints: Option<&LastUseHints>,
) -> StrandValues {
    let strand = info.strand(sid);
    let nodes = &strand.instrs;
    let pos_of: HashMap<InstrRef, usize> = nodes.iter().enumerate().map(|(i, r)| (*r, i)).collect();
    let preds = kernel.predecessors();

    let mut instances: Vec<ValueInstance> = Vec::new();
    // Defining instruction -> instance id, for covered-read attachment.
    let mut def_instance: HashMap<InstrRef, usize> = HashMap::new();
    let mut uf = UnionFind::default();
    // reg -> reaching defs, flowing through the strand's layout-order DAG.
    // `states[p]` is the out-state of node p, kept for join edges.
    let mut out_states: Vec<HashMap<Reg, BTreeSet<Def>>> = Vec::with_capacity(nodes.len());
    // Reads that are reached purely by live-in values, grouped per reg.
    let mut live_in_reads: HashMap<Reg, Vec<ReadRef>> = HashMap::new();
    // Deferred merge-read attachments: (read, defs) resolved after groups.
    let mut pending_merge_reads: Vec<(ReadRef, Vec<usize>)> = Vec::new();

    for (pos, at) in nodes.iter().enumerate() {
        let instr = kernel.instr(*at);
        // ---- compute the in-state ----
        // Semantics: a register absent from the map implicitly reaches the
        // strand live-in, so joins must add `LiveIn` for registers that are
        // defined along some predecessor paths but not others, and paths
        // entering the strand from outside contribute `LiveIn` everywhere.
        let mut in_strand_preds: Vec<usize> = Vec::new();
        let mut external_entry = false;

        if at.index > 0 {
            // Sequential predecessor within the block.
            let prev = InstrRef {
                block: at.block,
                index: at.index - 1,
            };
            match pos_of.get(&prev) {
                Some(p) => in_strand_preds.push(*p),
                None => external_entry = true, // mid-block strand start
            }
        } else {
            // Block entry: join in-strand predecessors' terminators. A
            // predecessor at a *later* position is the strand's own closing
            // backward branch (a loop whose header starts this strand);
            // values flowing around the backedge are inter-strand and
            // arrive as live-ins.
            for p in &preds[at.block.index()] {
                let pb = kernel.block(*p);
                let term = InstrRef {
                    block: *p,
                    index: pb.instrs.len() - 1,
                };
                match pos_of.get(&term) {
                    Some(t) if *t < pos => in_strand_preds.push(*t),
                    _ => external_entry = true,
                }
            }
            if in_strand_preds.is_empty() {
                external_entry = true;
            }
        }
        let mut state: HashMap<Reg, BTreeSet<Def>> = HashMap::new();
        let keys: BTreeSet<Reg> = in_strand_preds
            .iter()
            .flat_map(|p| out_states[*p].keys().copied())
            .collect();
        for reg in keys {
            let mut defs = BTreeSet::new();
            for p in &in_strand_preds {
                match out_states[*p].get(&reg) {
                    Some(d) if !d.is_empty() => defs.extend(d.iter().copied()),
                    _ => {
                        defs.insert(Def::LiveIn);
                    }
                }
            }
            if external_entry {
                defs.insert(Def::LiveIn);
            }
            state.insert(reg, defs);
        }
        let lookup = |state: &HashMap<Reg, BTreeSet<Def>>, r: Reg| -> BTreeSet<Def> {
            match state.get(&r) {
                Some(defs) if !defs.is_empty() => defs.clone(),
                _ => BTreeSet::from([Def::LiveIn]),
            }
        };

        // ---- reads ----
        for (i, src) in instr.srcs.iter().enumerate() {
            let Some(reg) = src.as_reg() else { continue };
            let read = ReadRef {
                at: *at,
                slot: Slot::from_index(i),
                reg,
                pos,
                unit: instr.op.unit(),
            };
            // A covered read observes exactly its covering in-strand
            // guarded definition (same guard, nothing in between): attach
            // it there and skip the reaching-def taint entirely.
            if let Some(h) = hints {
                if let Some(site) = h.covered.get(&(*at, i)) {
                    if let Some(&iid) = def_instance.get(site) {
                        instances[iid].reads.push(read);
                        continue;
                    }
                }
            }
            let defs = lookup(&state, reg);
            let insts: Vec<usize> = defs
                .iter()
                .filter_map(|d| match d {
                    Def::Inst(i) => Some(*i),
                    Def::LiveIn => None,
                })
                .collect();
            let has_live_in = defs.contains(&Def::LiveIn);
            match (insts.len(), has_live_in) {
                (0, _) => live_in_reads.entry(reg).or_default().push(read),
                (1, false) => instances[insts[0]].reads.push(read),
                (_, false) => {
                    // Merge read: union the reaching instances into one
                    // group; the read attaches to the whole group.
                    for w in insts.windows(2) {
                        uf.union(w[0], w[1]);
                    }
                    pending_merge_reads.push((read, insts));
                }
                (_, true) => {
                    // Tainted by live-in along some path: the read must be
                    // served by the MRF (Figure 10a/b). It is not allocable,
                    // and every reaching instance must keep an MRF copy for
                    // it, which `live_out` encodes.
                    for i in insts {
                        instances[i].live_out = true;
                    }
                }
            }
        }

        // ---- defs ----
        if let Some(dst) = instr.dst {
            let id = instances.len();
            let g = uf.make();
            debug_assert_eq!(g, id);
            def_instance.insert(*at, id);
            instances.push(ValueInstance {
                id,
                def: *at,
                def_pos: pos,
                reg: dst.reg,
                width: dst.width,
                produced_on_shared: instr.op.unit().is_shared(),
                reads: Vec::new(),
                live_out: false,
                group: 0, // filled after union-find settles
            });
            for r in dst.regs() {
                // A register absent from the map implicitly reaches the
                // strand live-in; a guarded (weak) def must preserve it.
                let entry = state
                    .entry(r)
                    .or_insert_with(|| BTreeSet::from([Def::LiveIn]));
                if instr.guard.is_none() {
                    entry.clear();
                }
                entry.insert(Def::Inst(id));
            }
        }
        out_states.push(state);
    }

    // ---- merge reads attach to every instance in their group ----
    for (read, insts) in pending_merge_reads {
        for i in insts {
            instances[i].reads.push(read);
        }
    }

    // ---- live-out: does an instance reach a strand exit where its
    //      register is live? ----
    for (pos, at) in nodes.iter().enumerate() {
        let block = kernel.block(at.block);
        let is_block_last = at.index + 1 == block.instrs.len();
        // Collect (exiting?, live set) targets.
        let mut exit_lives: Vec<crate::bitset::RegSet> = Vec::new();
        if !is_block_last {
            let next = InstrRef {
                block: at.block,
                index: at.index + 1,
            };
            if !pos_of.contains_key(&next) {
                exit_lives.push(match hints {
                    Some(h) => liveness.live_after_excluding(kernel, *at, &h.excluded),
                    None => liveness.live_after(kernel, *at),
                });
            }
        } else {
            for s in kernel.successors(at.block) {
                let first = InstrRef { block: s, index: 0 };
                // An edge to an *earlier* position in the same strand is
                // the strand's own backedge (loop): the next iteration is a
                // new strand instance, so this is an exit.
                let internal = matches!(pos_of.get(&first), Some(p) if *p > pos);
                if !internal {
                    exit_lives.push(liveness.live_in[s.index()].clone());
                }
            }
        }
        if exit_lives.is_empty() {
            continue;
        }
        let state = &out_states[pos];
        for live in exit_lives {
            for (reg, defs) in state {
                if !live.contains(*reg) {
                    continue;
                }
                for d in defs {
                    if let Def::Inst(i) = d {
                        instances[*i].live_out = true;
                    }
                }
            }
        }
    }

    // ---- finalize groups ----
    let mut group_ids: HashMap<usize, usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, inst) in instances.iter_mut().enumerate() {
        let root = uf.find(i);
        let g = *group_ids.entry(root).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        inst.group = g;
        groups[g].push(i);
    }
    // Merge-group members share live-out: if any member's value escapes,
    // every member must also write the MRF (the merge read's fallback and
    // later strands cannot tell which def executed).
    for g in &groups {
        if g.iter().any(|&i| instances[i].live_out) {
            for &i in g {
                instances[i].live_out = true;
            }
        }
    }

    let mut read_operands: Vec<ReadOperand> = live_in_reads
        .into_iter()
        .map(|(reg, mut reads)| {
            reads.sort_by_key(|r| r.pos);
            ReadOperand { reg, reads }
        })
        .collect();
    read_operands.sort_by_key(|r| r.reg);

    StrandValues {
        strand: sid,
        instances,
        read_operands,
        groups,
        len: nodes.len(),
    }
}

/// Computes def-use summaries for every strand of a kernel.
pub fn all_strand_values(
    kernel: &Kernel,
    info: &StrandInfo,
    liveness: &Liveness,
) -> Vec<StrandValues> {
    all_strand_values_opts(kernel, info, liveness, None)
}

/// [`all_strand_values`] with optional last-use hints (see
/// [`strand_values_opts`]).
pub fn all_strand_values_opts(
    kernel: &Kernel,
    info: &StrandInfo,
    liveness: &Liveness,
    hints: Option<&LastUseHints>,
) -> Vec<StrandValues> {
    info.strands
        .iter()
        .map(|s| strand_values_opts(kernel, info, liveness, s.id, hints))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness::Liveness;
    use crate::strand::mark_strands;
    use rfh_isa::parse_kernel;

    fn analyze(text: &str) -> (Kernel, StrandInfo, Vec<StrandValues>) {
        let mut k = parse_kernel(text).unwrap();
        let info = mark_strands(&mut k);
        let lv = Liveness::compute(&k);
        let values = all_strand_values(&k, &info, &lv);
        (k, info, values)
    }

    #[test]
    fn straight_line_instances() {
        let (_, _, values) = analyze(
            "
.kernel s
BB0:
  iadd r1 r0, 1
  iadd r2 r1, 1
  iadd r3 r1, r2
  st.global r0, r3
  exit
",
        );
        assert_eq!(values.len(), 1);
        let v = &values[0];
        assert_eq!(v.instances.len(), 3);
        let r1 = &v.instances[0];
        assert_eq!(r1.reads.len(), 2);
        assert!(!r1.live_out);
        let r3 = &v.instances[2];
        assert_eq!(r3.reads.len(), 1);
        assert!(
            r3.reads[0].unit.is_shared(),
            "store consumes on shared datapath"
        );
        // r0 is a live-in read operand, read twice (add and store).
        assert_eq!(v.read_operands.len(), 1);
        assert_eq!(v.read_operands[0].reads.len(), 2);
    }

    #[test]
    fn live_out_across_strand_boundary() {
        let (_, _, values) = analyze(
            "
.kernel lo
BB0:
  iadd r2 r0, 1
  ld.global r1 r0
  iadd r3 r1, r2
  st.global r0, r3
  exit
",
        );
        // Strand 1 = {iadd r2, ld}, strand 2 = rest: r2 crosses the
        // boundary, so its instance is live-out; r1 (long-latency result)
        // is also live out of strand 1.
        assert_eq!(values.len(), 2);
        let s1 = &values[0];
        let r2 = s1.instances.iter().find(|i| i.reg == Reg::new(2)).unwrap();
        assert!(r2.live_out);
        assert!(r2.reads.is_empty(), "read happens in the next strand");
        // In strand 2, r0, r1 and r2 all appear as read operands.
        let s2 = &values[1];
        assert_eq!(s2.read_operands.len(), 3);
    }

    #[test]
    fn hammock_merge_groups_instances() {
        // Figure 10c: r1 written on both sides, read at the merge.
        let (_, _, values) = analyze(
            "
.kernel h
BB0:
  mov r0, %tid.x
  setp.lt p0 r0, 16
  @p0 bra BB2
BB1:
  iadd r1 r0, 1
  bra BB3
BB2:
  iadd r1 r0, 2
BB3:
  st.global r0, r1
  exit
",
        );
        assert_eq!(values.len(), 1, "a hammock is a single strand");
        let v = &values[0];
        let defs: Vec<_> = v
            .instances
            .iter()
            .filter(|i| i.reg == Reg::new(1))
            .collect();
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[0].group, defs[1].group, "hammock defs share a group");
        // Both carry the merge read.
        assert_eq!(defs[0].reads.len(), 1);
        assert_eq!(defs[1].reads.len(), 1);
        let group = &v.groups[defs[0].group];
        assert_eq!(group.len(), 2);
    }

    #[test]
    fn merge_with_live_in_taints_read() {
        // Figure 10a: r1 written on one side only; the merge read must use
        // the MRF, so it attaches to no instance.
        let (_, _, values) = analyze(
            "
.kernel t
BB0:
  mov r0, %tid.x
  setp.lt p0 r0, 16
  @p0 bra BB2
BB1:
  iadd r1 r0, 1
BB2:
  st.global r0, r1
  exit
",
        );
        let v = &values[0];
        let def = v.instances.iter().find(|i| i.reg == Reg::new(1)).unwrap();
        assert!(def.reads.is_empty(), "merge read is MRF-only");
        assert!(def.live_out, "the MRF copy must exist for the merge read");
        // And the read is not misclassified as a pure live-in read.
        assert!(v.read_operands.iter().all(|r| r.reg != Reg::new(1)));
    }

    #[test]
    fn figure_10b_partial_orf_service() {
        // Figure 10b: extra read of r1 inside the writing block can be
        // ORF-served; the merge read cannot.
        let (_, _, values) = analyze(
            "
.kernel t2
BB0:
  mov r0, %tid.x
  setp.lt p0 r0, 16
  @p0 bra BB2
BB1:
  iadd r1 r0, 1
  iadd r2 r1, 1
BB2:
  st.global r0, r1
  exit
",
        );
        let v = &values[0];
        let def = v.instances.iter().find(|i| i.reg == Reg::new(1)).unwrap();
        assert_eq!(def.reads.len(), 1, "only the same-side read is allocable");
        assert!(def.live_out);
    }

    #[test]
    fn guarded_def_merges_with_previous_value() {
        let (_, _, values) = analyze(
            "
.kernel g
BB0:
  mov r1, 1
  @p0 mov r1, 2
  st.global r0, r1
  exit
",
        );
        let v = &values[0];
        let defs: Vec<_> = v
            .instances
            .iter()
            .filter(|i| i.reg == Reg::new(1))
            .collect();
        assert_eq!(defs.len(), 2);
        // The store's read reaches both defs → same group, read on both.
        assert_eq!(defs[0].group, defs[1].group);
        assert_eq!(defs[0].reads.len(), 1);
        assert_eq!(defs[1].reads.len(), 1);
    }

    #[test]
    fn wide_value_reads_attach_to_root_instance() {
        let (_, _, values) = analyze(
            "
.kernel w
BB0:
  ld.shared r4.w64 r0
  iadd r6 r4, 1
  iadd r7 r5, 1
  st.global r0, r6
  st.global r0, r7
  exit
",
        );
        let v = &values[0];
        let wide = v.instances.iter().find(|i| i.width == Width::W64).unwrap();
        assert_eq!(wide.reads.len(), 2, "reads of both halves attach");
        assert!(wide.reads.iter().any(|r| r.reg == Reg::new(4)));
        assert!(wide.reads.iter().any(|r| r.reg == Reg::new(5)));
    }

    #[test]
    fn read_positions_are_strand_relative() {
        let (_, _, values) = analyze(
            "
.kernel p
BB0:
  ld.global r1 r0
  iadd r2 r1, 1
  iadd r3 r2, 1
  exit
",
        );
        // Strand 2 starts at the consumer of r1; positions restart at 0.
        let s2 = &values[1];
        let r2 = s2.instances.iter().find(|i| i.reg == Reg::new(2)).unwrap();
        assert_eq!(r2.def_pos, 0);
        assert_eq!(r2.reads[0].pos, 1);
        assert_eq!(r2.last_read_pos(), 1);
    }
}

#[cfg(test)]
mod guarded_live_in_tests {
    use super::*;
    use crate::liveness::Liveness;
    use crate::strand::mark_strands;
    use rfh_isa::parse_kernel;

    /// Regression: a guarded def of a register never previously mentioned
    /// in the strand must still merge with the live-in value, so reads
    /// after it are tainted and stay on the MRF.
    #[test]
    fn guarded_def_of_fresh_register_keeps_live_in() {
        let mut k = parse_kernel(
            "
.kernel g
BB0:
  @p0 ld.shared r7 r0
  @p0 fadd r8 r7, 1.0f
  st.global r0, r8
  exit
",
        )
        .unwrap();
        let info = mark_strands(&mut k);
        let lv = Liveness::compute(&k);
        let values = all_strand_values(&k, &info, &lv);
        let def = values[0]
            .instances
            .iter()
            .find(|i| i.reg == rfh_isa::Reg::new(7))
            .unwrap();
        assert!(def.reads.is_empty(), "read is tainted by live-in");
        assert!(def.live_out, "the MRF copy must exist");
    }

    /// With last-use hints, the same pattern's reads are *covered* (same
    /// guard, no redefinition in between): they attach to the defining
    /// instance and the MRF copy is elided.
    #[test]
    fn covered_reads_attach_with_hints() {
        let mut k = parse_kernel(
            "
.kernel h
BB0:
  @p0 ld.shared r7 r0
  @p0 fadd r8 r7, 1.0f
  @p0 st.shared r0, r8
  exit
",
        )
        .unwrap();
        let info = mark_strands(&mut k);
        let hints = crate::absint::last_use::analyze(&k);
        let values = all_strand_values_opts(&k, &info, &hints.liveness, Some(&hints));
        let find = |r: u16| {
            values[0]
                .instances
                .iter()
                .find(|i| i.reg == rfh_isa::Reg::new(r))
                .unwrap()
        };
        let r7 = find(7);
        assert_eq!(r7.reads.len(), 1, "covered read attaches to the def");
        assert!(!r7.live_out, "no MRF copy needed");
        let r8 = find(8);
        assert_eq!(r8.reads.len(), 1);
        assert!(!r8.live_out);
    }
}
