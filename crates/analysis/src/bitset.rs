//! Dense register bitsets for dataflow analyses.

use std::fmt;

use rfh_isa::Reg;

/// A dense set of general-purpose registers, sized for a kernel's register
/// demand.
///
/// # Examples
///
/// ```
/// use rfh_analysis::RegSet;
/// use rfh_isa::Reg;
///
/// let mut s = RegSet::new(40);
/// s.insert(Reg::new(3));
/// s.insert(Reg::new(39));
/// assert!(s.contains(Reg::new(3)));
/// assert_eq!(s.iter().count(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RegSet {
    words: Vec<u64>,
    capacity: u16,
}

impl RegSet {
    /// Creates an empty set able to hold registers `r0..r{capacity}`.
    pub fn new(capacity: u16) -> Self {
        RegSet {
            words: vec![0; (capacity as usize).div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> u16 {
        self.capacity
    }

    /// Inserts a register; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the register index is at or beyond the capacity.
    pub fn insert(&mut self, r: Reg) -> bool {
        assert!(
            r.index() < self.capacity,
            "register {r} out of set capacity"
        );
        let (w, b) = (r.index() as usize / 64, r.index() as usize % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes a register; returns whether it was present.
    pub fn remove(&mut self, r: Reg) -> bool {
        if r.index() >= self.capacity {
            return false;
        }
        let (w, b) = (r.index() as usize / 64, r.index() as usize % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Whether the register is in the set.
    pub fn contains(&self, r: Reg) -> bool {
        if r.index() >= self.capacity {
            return false;
        }
        let (w, b) = (r.index() as usize / 64, r.index() as usize % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Unions `other` into `self`; returns whether `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different capacities.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Removes every register in `other` from `self`.
    pub fn subtract(&mut self, other: &RegSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Empties the set.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over members in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros();
                w &= w - 1;
                Some(Reg::new((wi * 64) as u16 + b as u16))
            })
        })
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Reg> for RegSet {
    /// Collects registers into a set sized to the largest member.
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> Self {
        let regs: Vec<Reg> = iter.into_iter().collect();
        let cap = regs.iter().map(|r| r.index() + 1).max().unwrap_or(0);
        let mut s = RegSet::new(cap);
        for r in regs {
            s.insert(r);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = RegSet::new(100);
        assert!(s.insert(Reg::new(0)));
        assert!(!s.insert(Reg::new(0)));
        assert!(s.insert(Reg::new(99)));
        assert!(s.contains(Reg::new(99)));
        assert!(s.remove(Reg::new(99)));
        assert!(!s.remove(Reg::new(99)));
        assert!(!s.contains(Reg::new(99)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn out_of_capacity_contains_is_false() {
        let s = RegSet::new(4);
        assert!(!s.contains(Reg::new(10)));
    }

    #[test]
    #[should_panic]
    fn out_of_capacity_insert_panics() {
        let mut s = RegSet::new(4);
        s.insert(Reg::new(4));
    }

    #[test]
    fn union_reports_change() {
        let mut a = RegSet::new(70);
        let mut b = RegSet::new(70);
        b.insert(Reg::new(65));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.contains(Reg::new(65)));
    }

    #[test]
    fn subtract_removes_members() {
        let mut a = RegSet::new(10);
        a.insert(Reg::new(1));
        a.insert(Reg::new(2));
        let mut b = RegSet::new(10);
        b.insert(Reg::new(2));
        a.subtract(&b);
        assert!(a.contains(Reg::new(1)));
        assert!(!a.contains(Reg::new(2)));
    }

    #[test]
    fn iter_in_order() {
        let mut s = RegSet::new(130);
        for i in [5u16, 64, 127, 0] {
            s.insert(Reg::new(i));
        }
        let v: Vec<u16> = s.iter().map(|r| r.index()).collect();
        assert_eq!(v, vec![0, 5, 64, 127]);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: RegSet = [Reg::new(3), Reg::new(17)].into_iter().collect();
        assert_eq!(s.capacity(), 18);
        assert_eq!(s.len(), 2);
        let empty: RegSet = std::iter::empty().collect();
        assert!(empty.is_empty());
    }
}
