//! Strand partitioning (paper §4.1).
//!
//! A *strand* is a sequence of instructions in which all dependences on
//! long-latency instructions come from operations issued in a previous
//! strand. The compiler marks the last instruction of each strand with the
//! `ends_strand` bit (one extra bit per instruction, §6.5). All values
//! communicated between strands must go through the MRF, so the allocator
//! in `rfh-alloc` works strand by strand.
//!
//! Strand endpoints arise from (Figure 5):
//!
//! * an instruction reading a register produced by a long-latency operation
//!   issued in the *current* strand — the endpoint is just before the
//!   reader, and the warp is descheduled there at run time;
//! * a backward branch (and, symmetrically, every block targeted by a
//!   backward branch begins a new strand);
//! * a barrier, which suspends the warp;
//! * a control-flow join where the set of *pending* long-latency events
//!   differs between incoming paths (Figure 5b) — resolved conservatively
//!   by inserting an endpoint at the join;
//! * an unguarded `exit`.
//!
//! Endpoints that fall at a block entry are encoded by marking the
//! terminator of every predecessor block, which is what a real encoding
//! would do (whichever path executes, the bit fires before the join).

use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

use rfh_isa::{BlockId, InstrRef, Kernel, Reg};

use crate::bitset::RegSet;
use crate::dom::DomTree;
use crate::liveness::Liveness;

/// Identifier of a strand within a kernel (dense, in layout order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StrandId(pub u32);

impl StrandId {
    /// The strand's index in [`StrandInfo::strands`].
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Why a strand ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EndReason {
    /// The next instruction consumes a long-latency result issued in this
    /// strand; the warp is descheduled here.
    LongLatencyDep,
    /// The strand ends at a backward branch; the warp need not be
    /// descheduled, but the ORF/LRF are invalidated.
    BackwardBranch,
    /// The strand ends at a barrier; the warp is descheduled.
    Barrier,
    /// The strand ends at a join whose pending long-latency events are
    /// control-flow dependent (Figure 5b).
    UncertainJoin,
    /// The strand ends because the next block is a loop header (the target
    /// of a backward branch).
    LoopHeader,
    /// The strand ends at an unguarded `exit` (or the end of the kernel).
    KernelEnd,
}

impl EndReason {
    /// Whether the two-level scheduler deschedules the warp at this kind of
    /// endpoint (long-latency dependences and barriers do; pure
    /// control-flow endpoints do not — §4.1).
    pub const fn deschedules(self) -> bool {
        matches!(self, EndReason::LongLatencyDep | EndReason::Barrier)
    }
}

/// One strand: a maximal run of layout-ordered instructions containing no
/// internal endpoint.
#[derive(Debug, Clone)]
pub struct Strand {
    /// This strand's id.
    pub id: StrandId,
    /// The instructions, in layout order.
    pub instrs: Vec<InstrRef>,
    /// Why the strand ends.
    pub end_reason: EndReason,
}

impl Strand {
    /// The blocks this strand overlaps, in layout order.
    pub fn blocks(&self) -> Vec<BlockId> {
        let mut blocks: Vec<BlockId> = Vec::new();
        for r in &self.instrs {
            if blocks.last() != Some(&r.block) {
                blocks.push(r.block);
            }
        }
        blocks
    }
}

/// The result of strand partitioning.
#[derive(Debug, Clone)]
pub struct StrandInfo {
    /// All strands in layout order.
    pub strands: Vec<Strand>,
    /// Strand id per instruction: `map[block][index]`.
    instr_map: Vec<Vec<u32>>,
}

impl StrandInfo {
    /// The strand containing the instruction at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is out of range.
    pub fn strand_of(&self, at: InstrRef) -> StrandId {
        StrandId(self.instr_map[at.block.index()][at.index])
    }

    /// The strand with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn strand(&self, id: StrandId) -> &Strand {
        &self.strands[id.index()]
    }

    /// Number of strands.
    pub fn len(&self) -> usize {
        self.strands.len()
    }

    /// Whether the kernel has no strands (only true for empty kernels).
    pub fn is_empty(&self) -> bool {
        self.strands.is_empty()
    }
}

/// Options for strand partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrandOpts {
    /// Split strands at deschedule points (dependences on long-latency
    /// operations and barriers). Disabling this models the idealized §7
    /// "never flush" machine in which LRF/ORF contents survive
    /// descheduling; it is not realizable with temporally-shared upper
    /// levels.
    pub split_on_deschedule: bool,
}

impl Default for StrandOpts {
    fn default() -> Self {
        StrandOpts {
            split_on_deschedule: true,
        }
    }
}

/// Partitions `kernel` into strands, setting the `ends_strand` bit on the
/// last instruction of each strand, and returns the strand structure.
///
/// The pass is idempotent: all existing `ends_strand` bits are cleared
/// first.
pub fn mark_strands(kernel: &mut Kernel) -> StrandInfo {
    mark_strands_opts(kernel, StrandOpts::default())
}

/// [`mark_strands`] with explicit [`StrandOpts`].
pub fn mark_strands_opts(kernel: &mut Kernel, opts: StrandOpts) -> StrandInfo {
    let n = kernel.blocks.len();
    let num_regs = kernel.num_regs();
    let dom = DomTree::dominators(kernel);

    for b in kernel.blocks.iter_mut() {
        for i in b.instrs.iter_mut() {
            i.ends_strand = false;
        }
    }

    // Blocks targeted by a backward branch begin new strands.
    let mut loop_header = vec![false; n];
    for b in &kernel.blocks {
        for s in kernel.successors(b.id) {
            if kernel.is_backward_edge(b.id, s) {
                loop_header[s.index()] = true;
            }
        }
    }

    let preds = kernel.predecessors();
    let mut reasons: HashMap<InstrRef, EndReason> = HashMap::new();
    let mut entry_boundary = vec![false; n];
    let mut entry_reason = vec![EndReason::UncertainJoin; n];
    let mut pending_out: Vec<Option<RegSet>> = vec![None; n];

    for bi in 0..n {
        let id = BlockId::new(bi as u32);
        if !dom.is_reachable(id) {
            continue;
        }
        let mut pending = if loop_header[bi] {
            entry_boundary[bi] = true;
            entry_reason[bi] = EndReason::LoopHeader;
            RegSet::new(num_regs)
        } else {
            // Join the pending sets of already-processed predecessors
            // (forward edges only reach here; backward preds were handled
            // by the loop-header rule above).
            let incoming: Vec<&RegSet> = preds[bi]
                .iter()
                .filter_map(|p| pending_out[p.index()].as_ref())
                .collect();
            match incoming.split_first() {
                None => RegSet::new(num_regs),
                Some((first, rest)) if rest.iter().all(|s| *s == *first) => (*first).clone(),
                _ => {
                    // Paths disagree about which long-latency events are
                    // pending: insert an endpoint at the join (Figure 5b).
                    entry_boundary[bi] = true;
                    entry_reason[bi] = EndReason::UncertainJoin;
                    RegSet::new(num_regs)
                }
            }
        };

        let block = &mut kernel.blocks[bi];
        let block_len = block.instrs.len();
        for i in 0..block_len {
            let reads_pending = opts.split_on_deschedule
                && block.instrs[i].reg_srcs().any(|(_, r)| pending.contains(r));
            if reads_pending {
                if i == 0 {
                    entry_boundary[bi] = true;
                    entry_reason[bi] = EndReason::LongLatencyDep;
                } else {
                    block.instrs[i - 1].ends_strand = true;
                    reasons.insert(
                        InstrRef {
                            block: id,
                            index: i - 1,
                        },
                        EndReason::LongLatencyDep,
                    );
                }
                pending.clear();
            }

            let at = InstrRef {
                block: id,
                index: i,
            };
            let instr = &mut block.instrs[i];
            if instr.op.is_barrier() && opts.split_on_deschedule {
                instr.ends_strand = true;
                reasons.insert(at, EndReason::Barrier);
                pending.clear();
            }
            if instr.op.is_branch() {
                let target = instr.target.expect("validated branch");
                if target <= id {
                    instr.ends_strand = true;
                    reasons.insert(at, EndReason::BackwardBranch);
                    pending.clear();
                }
            }
            if instr.op.is_exit() && instr.guard.is_none() {
                instr.ends_strand = true;
                reasons.insert(at, EndReason::KernelEnd);
                pending.clear();
            }
            // Strong defs retire the old pending value; long-latency defs
            // begin new pending events.
            if instr.guard.is_none() {
                let defs: Vec<_> = instr.def_regs().collect();
                for r in defs {
                    pending.remove(r);
                }
            }
            if instr.op.is_long_latency() {
                let defs: Vec<_> = instr.def_regs().collect();
                for r in defs {
                    pending.insert(r);
                }
            }
        }
        pending_out[bi] = Some(pending);
    }

    // Encode block-entry boundaries on every predecessor's terminator.
    for bi in 0..n {
        if !entry_boundary[bi] || !dom.is_reachable(BlockId::new(bi as u32)) {
            continue;
        }
        // Also mark the layout-previous block's terminator even when it is
        // not a CFG predecessor (it jumps elsewhere): without this, layout
        // segmentation would glue the boundary block onto a disconnected
        // earlier region. No path crosses that terminator into the boundary
        // block, and the previous strand already ends at its jump, so the
        // extra bit changes no runtime behaviour — it only keeps strands
        // equal to the paper's definition.
        let mut marks: Vec<BlockId> = preds[bi].clone();
        if bi > 0 {
            marks.push(BlockId::new(bi as u32 - 1));
        }
        for p in marks {
            let pb = &mut kernel.blocks[p.index()];
            let last = pb.instrs.len().checked_sub(1).expect("blocks are nonempty");
            if !pb.instrs[last].ends_strand {
                pb.instrs[last].ends_strand = true;
                reasons.insert(
                    InstrRef {
                        block: p,
                        index: last,
                    },
                    entry_reason[bi],
                );
            }
        }
    }

    // Segment layout-ordered instructions into strands.
    let mut strands: Vec<Strand> = Vec::new();
    let mut instr_map: Vec<Vec<u32>> = kernel
        .blocks
        .iter()
        .map(|b| vec![0; b.instrs.len()])
        .collect();
    let mut current: Vec<InstrRef> = Vec::new();
    let close = |current: &mut Vec<InstrRef>, strands: &mut Vec<Strand>, reason: EndReason| {
        if current.is_empty() {
            return;
        }
        let id = StrandId(strands.len() as u32);
        strands.push(Strand {
            id,
            instrs: std::mem::take(current),
            end_reason: reason,
        });
    };
    for b in &kernel.blocks {
        for (i, instr) in b.instrs.iter().enumerate() {
            let at = InstrRef {
                block: b.id,
                index: i,
            };
            current.push(at);
            if instr.ends_strand {
                let reason = reasons
                    .get(&at)
                    .copied()
                    .unwrap_or(EndReason::UncertainJoin);
                close(&mut current, &mut strands, reason);
            }
        }
    }
    close(&mut current, &mut strands, EndReason::KernelEnd);

    for s in &strands {
        for r in &s.instrs {
            instr_map[r.block.index()][r.index] = s.id.0;
        }
    }

    StrandInfo { strands, instr_map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_isa::parse_kernel;

    fn at(b: u32, i: usize) -> InstrRef {
        InstrRef {
            block: BlockId::new(b),
            index: i,
        }
    }

    #[test]
    fn long_latency_dependence_splits_strand() {
        // Figure 5a, Strand 1: ld.global then a consumer.
        let mut k = parse_kernel(
            "
.kernel f5a
BB0:
  ld.global r1 r0
  iadd r2 r0, 1
  iadd r3 r1, 1
  exit
",
        )
        .unwrap();
        let info = mark_strands(&mut k);
        // Independent iadd stays in strand 1; the consumer of r1 starts
        // strand 2.
        assert!(k.blocks[0].instrs[1].ends_strand);
        assert_eq!(info.strands.len(), 2);
        assert_eq!(info.strands[0].end_reason, EndReason::LongLatencyDep);
        assert!(info.strands[0].end_reason.deschedules());
        assert_eq!(info.strand_of(at(0, 2)), StrandId(1));
    }

    #[test]
    fn backward_branch_ends_strand_and_header_starts_one() {
        let mut k = parse_kernel(
            "
.kernel lp
BB0:
  mov r0, 0
BB1:
  iadd r0 r0, 1
  setp.lt p0 r0, 10
  @p0 bra BB1
BB2:
  exit
",
        )
        .unwrap();
        let info = mark_strands(&mut k);
        // BB0's terminator marked (BB1 is a loop header); the backward
        // branch marked.
        assert!(k.blocks[0].instrs[0].ends_strand);
        assert!(k.blocks[1].instrs[2].ends_strand);
        assert_eq!(info.strands.len(), 3);
        assert_eq!(info.strands[0].end_reason, EndReason::LoopHeader);
        assert_eq!(info.strands[1].end_reason, EndReason::BackwardBranch);
        assert!(!info.strands[1].end_reason.deschedules());
        // The loop body is exactly one strand.
        assert_eq!(info.strand_of(at(1, 0)), info.strand_of(at(1, 2)));
    }

    #[test]
    fn uncertain_join_inserts_endpoint() {
        // Figure 5b: a long-latency load on only one side of a hammock;
        // the merge block gets an endpoint.
        let mut k = parse_kernel(
            "
.kernel f5b
BB0:
  setp.lt p0 r0, 1
  @p0 bra BB2
BB1:
  ld.global r1 r0
BB2:
  iadd r2 r0, 1
  exit
",
        )
        .unwrap();
        let info = mark_strands(&mut k);
        // Both predecessors of BB2 end a strand.
        assert!(k.blocks[0].instrs[1].ends_strand, "branch side marked");
        assert!(k.blocks[1].instrs[0].ends_strand, "load side marked");
        // BB2 begins a new strand.
        let s2 = info.strand_of(at(2, 0));
        assert_ne!(info.strand_of(at(0, 0)), s2);
        assert_ne!(info.strand_of(at(1, 0)), s2);
        assert!(info
            .strands
            .iter()
            .any(|s| s.end_reason == EndReason::UncertainJoin));
    }

    #[test]
    fn symmetric_pending_does_not_split() {
        // Both sides issue the same long-latency load into r1: the join's
        // pending sets agree, so no uncertain endpoint is inserted; the
        // strand ends only at the consumer of r1.
        let mut k = parse_kernel(
            "
.kernel sym
BB0:
  setp.lt p0 r0, 1
  @p0 bra BB2
BB1:
  ld.global r1 r0
  bra BB3
BB2:
  ld.global r1 r0
BB3:
  iadd r2 r0, 1
  iadd r3 r1, 1
  exit
",
        )
        .unwrap();
        let info = mark_strands(&mut k);
        // BB3's first instruction continues the strand; the endpoint falls
        // before the consumer of r1.
        assert!(k.blocks[3].instrs[0].ends_strand);
        assert_eq!(
            info.strand_of(at(3, 0)),
            info.strand_of(at(1, 0)),
            "join continues the same strand"
        );
        assert!(!info
            .strands
            .iter()
            .any(|s| s.end_reason == EndReason::UncertainJoin));
    }

    #[test]
    fn barrier_ends_strand() {
        let mut k = parse_kernel(
            "
.kernel b
BB0:
  st.shared r0, r1
  bar
  ld.shared r2 r0
  exit
",
        )
        .unwrap();
        let info = mark_strands(&mut k);
        assert!(k.blocks[0].instrs[1].ends_strand);
        assert_eq!(info.strands[0].end_reason, EndReason::Barrier);
        assert!(info.strands[0].end_reason.deschedules());
    }

    #[test]
    fn overwritten_pending_value_is_retired() {
        // The long-latency result in r1 is overwritten by a short op before
        // any read: no strand split.
        let mut k = parse_kernel(
            "
.kernel ow
BB0:
  ld.global r1 r0
  mov r1, 5
  iadd r2 r1, 1
  exit
",
        )
        .unwrap();
        let info = mark_strands(&mut k);
        assert_eq!(info.strands.len(), 1);
    }

    #[test]
    fn strands_are_idempotent() {
        let mut k = parse_kernel(
            "
.kernel i
BB0:
  ld.global r1 r0
  iadd r2 r1, 1
  exit
",
        )
        .unwrap();
        let a = mark_strands(&mut k);
        let snapshot = k.clone();
        let b = mark_strands(&mut k);
        assert_eq!(k, snapshot);
        assert_eq!(a.strands.len(), b.strands.len());
    }

    #[test]
    fn strand_blocks_listing() {
        let mut k = parse_kernel(
            "
.kernel sb
BB0:
  mov r0, 1
BB1:
  iadd r1 r0, 1
  exit
",
        )
        .unwrap();
        let info = mark_strands(&mut k);
        assert_eq!(info.strands.len(), 1);
        assert_eq!(
            info.strands[0].blocks(),
            vec![BlockId::new(0), BlockId::new(1)]
        );
    }

    #[test]
    fn exit_closes_final_strand() {
        let mut k = parse_kernel(".kernel e\nBB0:\n  exit\n").unwrap();
        let info = mark_strands(&mut k);
        assert_eq!(info.strands.len(), 1);
        assert_eq!(info.strands[0].end_reason, EndReason::KernelEnd);
    }
}

/// Maps every instruction to its strand index using the `ends_strand` bits
/// already present on the kernel (set by [`mark_strands`]); returns
/// `map[block][index] = strand`. Useful for per-strand accounting without
/// recomputing the full analysis.
pub fn segment_ids(kernel: &Kernel) -> Vec<Vec<u32>> {
    let mut map: Vec<Vec<u32>> = kernel
        .blocks
        .iter()
        .map(|b| vec![0; b.instrs.len()])
        .collect();
    let mut current = 0u32;
    for (at, i) in kernel.iter_instrs() {
        map[at.block.index()][at.index] = current;
        if i.ends_strand {
            current += 1;
        }
    }
    map
}

/// Number of strands implied by the `ends_strand` bits (segments in layout
/// order; a trailing unterminated run counts as one).
pub fn segment_count(kernel: &Kernel) -> usize {
    let ends: usize = kernel.iter_instrs().filter(|(_, i)| i.ends_strand).count();
    let trailing = kernel
        .blocks
        .last()
        .and_then(|b| b.instrs.last())
        .map(|i| !i.ends_strand)
        .unwrap_or(false);
    ends + usize::from(trailing)
}

/// Canonical, strand-relative text for one strand: equal canonical texts
/// guarantee that per-strand allocation (`rfh-alloc`) produces identical
/// placements relative to the strand's own instructions, so the text can
/// key an incremental allocation cache.
///
/// Allocation of a strand depends on more than its instruction bytes, so
/// all of the following is encoded (each strand-relative, never absolute):
///
/// * the instructions in layout order, with branch targets remapped to
///   strand-local block indices (`BB4294967295` marks a target outside the
///   strand);
/// * each instruction's strand-local block index and in-strand structural
///   predecessors (the internal forward DAG that reaching-definitions in
///   [`crate::defuse::strand_values`] flows over), plus an `e` flag where a
///   path enters the strand from outside (live-in taint, Figure 10a/b);
/// * per instruction, the registers *defined in the strand* that are live
///   across any strand exit at that point — exactly the bits that decide
///   `live_out` (the forced MRF copy, §4.2);
/// * the dominance relation between the strand's blocks, which bounds
///   read-operand fill coverage (§4.4) across forward branches.
///
/// Everything else the allocator consumes (operand registers, widths,
/// guards, units, immediates) is part of the printed instruction text.
/// The text deliberately excludes allocation configuration and energy
/// model: callers salt the cache key with those separately.
///
/// # Panics
///
/// Panics if `sid` is out of range for `info`.
pub fn strand_canonical(
    kernel: &Kernel,
    info: &StrandInfo,
    liveness: &Liveness,
    dom: &DomTree,
    sid: StrandId,
) -> String {
    let strand = info.strand(sid);
    let nodes = &strand.instrs;
    let pos_of: HashMap<InstrRef, usize> = nodes.iter().enumerate().map(|(i, r)| (*r, i)).collect();
    let preds = kernel.predecessors();
    let blocks = strand.blocks();
    let local: HashMap<BlockId, usize> = blocks.iter().enumerate().map(|(i, b)| (*b, i)).collect();

    // Registers defined anywhere in the strand: the only registers whose
    // exit liveness can influence allocation (via `live_out`).
    let strand_defs: BTreeSet<Reg> = nodes
        .iter()
        .flat_map(|at| kernel.instr(*at).def_regs())
        .collect();

    let mut out = String::from("strand-canon-v1\n");
    // Dominance among strand blocks, layout-ordered pairs i < j (strands
    // contain only forward control flow, so these are the only queries
    // read-operand coverage can make).
    out.push_str("doms=");
    for (i, bi) in blocks.iter().enumerate() {
        for bj in blocks.iter().skip(i + 1) {
            out.push(if dom.dominates(*bi, *bj) { '1' } else { '0' });
        }
    }
    out.push('\n');

    for (pos, at) in nodes.iter().enumerate() {
        let instr = kernel.instr(*at);

        // In-strand structural predecessors; mirrors the in-state logic of
        // `defuse::strand_values` exactly.
        let mut ps: Vec<usize> = Vec::new();
        let mut external_entry = false;
        if at.index > 0 {
            let prev = InstrRef {
                block: at.block,
                index: at.index - 1,
            };
            match pos_of.get(&prev) {
                Some(p) => ps.push(*p),
                None => external_entry = true, // mid-block strand start
            }
        } else {
            for p in &preds[at.block.index()] {
                let pb = kernel.block(*p);
                let term = InstrRef {
                    block: *p,
                    index: pb.instrs.len() - 1,
                };
                match pos_of.get(&term) {
                    Some(t) if *t < pos => ps.push(*t),
                    _ => external_entry = true,
                }
            }
            if ps.is_empty() {
                external_entry = true;
            }
        }
        ps.sort_unstable();

        // Strand-defined registers live across any exit at this point;
        // mirrors the exit enumeration of the live-out pass in
        // `defuse::strand_values`.
        let block = kernel.block(at.block);
        let is_block_last = at.index + 1 == block.instrs.len();
        let mut exit_live: BTreeSet<Reg> = BTreeSet::new();
        if !is_block_last {
            let next = InstrRef {
                block: at.block,
                index: at.index + 1,
            };
            if !pos_of.contains_key(&next) {
                let live = liveness.live_after(kernel, *at);
                exit_live.extend(strand_defs.iter().copied().filter(|r| live.contains(*r)));
            }
        } else {
            for s in kernel.successors(at.block) {
                let first = InstrRef { block: s, index: 0 };
                let internal = matches!(pos_of.get(&first), Some(p) if *p > pos);
                if !internal {
                    let live = &liveness.live_in[s.index()];
                    exit_live.extend(strand_defs.iter().copied().filter(|r| live.contains(*r)));
                }
            }
        }

        // The instruction in its plain printed form, with the branch
        // target (if any) remapped to a strand-local block index.
        let text = match instr.target {
            Some(t) => {
                let mut relocated = instr.clone();
                relocated.target = Some(match local.get(&t) {
                    Some(l) => BlockId::new(*l as u32),
                    None => BlockId::new(u32::MAX),
                });
                relocated.to_string()
            }
            None => instr.to_string(),
        };

        let _ = write!(out, "n{pos} b{} p{ps:?}", local[&at.block]);
        if external_entry {
            out.push('e');
        }
        out.push_str(" x[");
        for r in &exit_live {
            let _ = write!(out, "{},", r.index());
        }
        out.push_str("] | ");
        out.push_str(&text);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod canonical_tests {
    use super::*;
    use crate::liveness::Liveness;
    use rfh_isa::parse_kernel;

    fn canon_all(text: &str) -> Vec<String> {
        let mut k = parse_kernel(text).unwrap();
        let info = mark_strands(&mut k);
        let lv = Liveness::compute(&k);
        let dom = DomTree::dominators(&k);
        info.strands
            .iter()
            .map(|s| strand_canonical(&k, &info, &lv, &dom, s.id))
            .collect()
    }

    #[test]
    fn identical_strands_share_canonical_text() {
        // Two copies of the same producer/consumer idiom separated by a
        // long-latency boundary: the repeated strand canonicalizes
        // identically even though it sits at different absolute positions.
        let texts = canon_all(
            "
.kernel twice
BB0:
  ld.global r1 r0
  iadd r2 r1, 1
  st.global r0, r2
  ld.global r1 r0
  iadd r2 r1, 1
  st.global r0, r2
  ld.global r1 r0
  iadd r2 r1, 1
  exit
",
        );
        assert!(texts.len() >= 4, "got {} strands", texts.len());
        assert_eq!(texts[1], texts[2], "repeated strands must hash equal");
        assert_ne!(texts[0], texts[1], "the entry strand differs");
        assert_ne!(
            texts[2], texts[3],
            "the final strand (no trailing load) differs"
        );
    }

    #[test]
    fn operand_edit_changes_canonical_text() {
        let a = canon_all(".kernel a\nBB0:\n  iadd r1 r0, 1\n  st.global r0, r1\n  exit\n");
        let b = canon_all(".kernel a\nBB0:\n  iadd r1 r0, 2\n  st.global r0, r1\n  exit\n");
        assert_ne!(a, b);
    }

    #[test]
    fn exit_liveness_is_part_of_the_text() {
        // Same strand instructions, but in `b` the value crosses the
        // strand boundary (read again after the load): live_out differs,
        // so the canonical text must differ.
        let a = canon_all(
            ".kernel a\nBB0:\n  iadd r2 r0, 1\n  st.global r0, r2\n  ld.global r1 r0\n  iadd r3 r1, 1\n  exit\n",
        );
        let b = canon_all(
            ".kernel b\nBB0:\n  iadd r2 r0, 1\n  st.global r0, r2\n  ld.global r1 r0\n  iadd r3 r1, r2\n  exit\n",
        );
        assert_ne!(a[0], b[0], "live-out of r2 must distinguish the strands");
    }

    #[test]
    fn branch_targets_are_strand_relative() {
        // The same hammock at different absolute block positions: branch
        // targets (and block annotations) are remapped strand-locally, so
        // the canonical texts are equal.
        let a = canon_all(
            "
.kernel a
BB0:
  iadd r8 r9, 1
  setp.lt p0 r0, 16
  @p0 bra BB2
BB1:
  iadd r1 r0, 1
BB2:
  st.global r0, r1
  exit
",
        );
        let b = canon_all(
            "
.kernel b
BB0:
  mov r0, %tid.x
  ld.global r9 r0
BB1:
  iadd r8 r9, 1
  setp.lt p0 r0, 16
  @p0 bra BB3
BB2:
  iadd r1 r0, 1
BB3:
  st.global r0, r1
  exit
",
        );
        let shifted = b.last().expect("hammock strand");
        assert_eq!(&a[0], shifted, "absolute block ids must not leak in");
    }
}

#[cfg(test)]
mod segment_tests {
    use super::*;
    use rfh_isa::parse_kernel;

    #[test]
    fn segment_ids_match_strand_info() {
        let mut k = parse_kernel(
            "
.kernel s
BB0:
  ld.global r1 r0
  iadd r2 r1, 1
  iadd r3 r2, 1
  exit
",
        )
        .unwrap();
        let info = mark_strands(&mut k);
        let ids = segment_ids(&k);
        for (at, _) in k.iter_instrs() {
            assert_eq!(
                ids[at.block.index()][at.index],
                info.strand_of(at).0,
                "at {at}"
            );
        }
        assert_eq!(segment_count(&k), info.strands.len());
    }
}

#[cfg(test)]
mod nested_loop_tests {
    use super::*;
    use rfh_isa::parse_kernel;

    #[test]
    fn nested_loops_partition_cleanly() {
        let mut k = parse_kernel(
            "
.kernel nested
BB0:
  mov r0, 0
BB1:
  mov r1, 0
BB2:
  iadd r1 r1, 1
  iadd r2 r1, r0
  setp.lt p0 r1, 4
  @p0 bra BB2
BB3:
  iadd r0 r0, 1
  setp.lt p1 r0, 3
  @p1 bra BB1
BB4:
  st.global r0, r2
  exit
",
        )
        .unwrap();
        let info = mark_strands(&mut k);
        // Both headers (BB1, BB2) start strands; both latches end them.
        assert!(
            k.blocks[0].instrs.last().unwrap().ends_strand,
            "entry→outer header"
        );
        assert!(
            k.blocks[1].instrs.last().unwrap().ends_strand,
            "outer body→inner header"
        );
        assert!(
            k.blocks[2].instrs.last().unwrap().ends_strand,
            "inner latch"
        );
        assert!(
            k.blocks[3].instrs.last().unwrap().ends_strand,
            "outer latch"
        );
        // The inner body is one strand; no strand spans either backedge.
        let inner = info.strand_of(rfh_isa::InstrRef {
            block: BlockId::new(2),
            index: 0,
        });
        assert_eq!(
            info.strand(inner).blocks(),
            vec![BlockId::new(2)],
            "inner loop body is a self-contained strand"
        );
        for s in &info.strands {
            let blocks = s.blocks();
            for w in blocks.windows(2) {
                assert!(w[1] > w[0], "strands never wrap backwards");
            }
        }
    }
}

#[cfg(test)]
mod disconnected_header_tests {
    use super::*;
    use rfh_isa::parse_kernel;

    /// Regression (found in review): a loop header whose layout-previous
    /// block is *not* a predecessor (it ends with an unconditional forward
    /// branch) must still begin its own strand.
    #[test]
    fn loop_header_after_disconnected_block_starts_new_strand() {
        let mut k = parse_kernel(
            "
.kernel dh
BB0:
  mov r0, 0
  bra BB2
BB1:
  iadd r9 r9, 1
  bra BB3
BB2:
  iadd r0 r0, 1
  setp.lt p0 r0, 4
  @p0 bra BB2
BB3:
  st.global r0, r0
  exit
",
        )
        .unwrap();
        let info = mark_strands(&mut k);
        // BB1 (reachable only as dead-ish side path? here BB1 is actually
        // unreachable from entry, but it is layout-previous to BB2).
        let header_strand = info.strand_of(InstrRef {
            block: BlockId::new(2),
            index: 0,
        });
        let prev_strand = info.strand_of(InstrRef {
            block: BlockId::new(1),
            index: 0,
        });
        assert_ne!(
            header_strand, prev_strand,
            "header must not be glued to BB1"
        );
        assert!(k.blocks[1].instrs.last().unwrap().ends_strand);
        // Segmentation from bits agrees with StrandInfo.
        let ids = segment_ids(&k);
        for (at, _) in k.iter_instrs() {
            assert_eq!(
                ids[at.block.index()][at.index],
                info.strand_of(at).0,
                "{at}"
            );
        }
    }
}
