#![warn(missing_docs)]

//! # rfh-analysis — compiler analyses over RFH kernels
//!
//! The analyses that the paper obtains from Ocelot (dataflow, control flow,
//! dominance — §5.1) plus the paper's own *strand* partitioning pass (§4.1),
//! reimplemented from scratch:
//!
//! * [`bitset::RegSet`] — dense register sets for dataflow;
//! * [`dom`] — dominator and post-dominator trees (post-dominators also
//!   drive the SIMT executor's branch reconvergence);
//! * [`liveness`] — block-level register liveness, the `dead_after`
//!   annotation pass (static liveness encoded in the binary, used by the HW
//!   RFC to elide writebacks of dead values, §2.2), and live-range queries;
//! * [`strand`] — partitions a kernel into strands and sets the
//!   `ends_strand` instruction bit: a strand ends at a dependence on a
//!   long-latency operation issued in the same strand, at a backward
//!   branch, at a block targeted by a backward branch, at a barrier, and at
//!   control-flow joins where the set of pending long-latency events is
//!   uncertain (paper Figure 5);
//! * [`defuse`] — per-strand *value instances* (a definition plus the reads
//!   it reaches inside the strand), live-in read-operand ranges (§4.4), and
//!   merge groups for values written on both sides of a hammock (§4.5);
//! * [`absint`] — a fixpoint abstract interpreter computing per-register
//!   interval value ranges, tid-affine forms, and warp-uniformity, plus the
//!   [`absint::last_use`] hint pass (covered reads under matching guards)
//!   that powers compiler-assisted early release in `rfh-alloc`.
//!
//! The output of [`strand::mark_strands`] + [`defuse::strand_values`] is
//! exactly the input the allocation algorithms in `rfh-alloc` consume.

pub mod absint;
pub mod bitset;
pub mod defuse;
pub mod dom;
pub mod liveness;
pub mod strand;

pub use absint::{
    last_use::LastUseHints, AbsCtx, AbsResults, AbsVal, DeadEdge, InstrFacts, PredAbs,
};
pub use bitset::RegSet;
pub use defuse::{ReadRef, StrandValues, ValueInstance};
pub use dom::DomTree;
pub use liveness::Liveness;
pub use strand::{strand_canonical, EndReason, Strand, StrandId, StrandInfo, StrandOpts};
