//! Register liveness analysis and the static-liveness annotation pass.
//!
//! The HW register file cache baseline (paper §2.2) relies on "static
//! liveness information encoded in the program binary to elide writebacks of
//! dead values"; [`annotate_dead`] computes exactly that, setting the
//! per-operand `dead_after` flags. The allocator uses block-level liveness
//! to decide whether a value instance is live out of its strand.
//!
//! Guarded (predicated) definitions do not kill a register: when the guard
//! is false the old value survives, so liveness and reaching definitions
//! treat guarded defs as weak updates.

use std::collections::HashSet;

use rfh_isa::{InstrRef, Instruction, Kernel};

use crate::bitset::RegSet;

/// A set of operand reads excluded from liveness `gen` sets, keyed by
/// `(instruction, source-operand index)`. Produced by
/// [`crate::absint::last_use`]: a *covered* read observes a guarded
/// definition earlier in the same strand (never the value flowing into the
/// block), so it is not upward-exposed and does not keep the register live
/// across the preceding program region.
pub type ExcludedReads = HashSet<(InstrRef, usize)>;

/// Block-level liveness sets for one kernel.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live at each block entry, indexed by block.
    pub live_in: Vec<RegSet>,
    /// Registers live at each block exit, indexed by block.
    pub live_out: Vec<RegSet>,
    num_regs: u16,
}

/// Registers an instruction defines *strongly* (killing the old value):
/// unguarded destinations only.
fn strong_defs(i: &Instruction) -> impl Iterator<Item = rfh_isa::Reg> + '_ {
    let killing = i.guard.is_none();
    i.def_regs().filter(move |_| killing)
}

impl Liveness {
    /// Computes block-level liveness by iterating the backward dataflow
    /// equations to a fixed point.
    pub fn compute(kernel: &Kernel) -> Liveness {
        Self::compute_excluding(kernel, &ExcludedReads::new())
    }

    /// [`Liveness::compute`] with a set of reads excluded from the `gen`
    /// sets. Excluded reads are *covered* (see [`ExcludedReads`]): they
    /// provably observe an in-block guarded definition, not the block-entry
    /// value, so they are not upward-exposed uses.
    pub fn compute_excluding(kernel: &Kernel, excluded: &ExcludedReads) -> Liveness {
        let n = kernel.blocks.len();
        let num_regs = kernel.num_regs();
        let mut live_in = vec![RegSet::new(num_regs); n];
        let mut live_out = vec![RegSet::new(num_regs); n];

        // Per-block gen (upward-exposed uses) and kill (strong defs).
        let mut gen = vec![RegSet::new(num_regs); n];
        let mut kill = vec![RegSet::new(num_regs); n];
        for b in &kernel.blocks {
            let (g, k) = (&mut gen[b.id.index()], &mut kill[b.id.index()]);
            for (index, ins) in b.instrs.iter().enumerate() {
                let at = InstrRef { block: b.id, index };
                for (slot, r) in ins.reg_srcs() {
                    if excluded.contains(&(at, slot.index())) {
                        continue;
                    }
                    if !kill_contains(k, r) {
                        g.insert(r);
                    }
                }
                for r in strong_defs(ins) {
                    k.insert(r);
                }
            }
        }

        let mut changed = true;
        while changed {
            changed = false;
            for b in kernel.blocks.iter().rev() {
                let i = b.id.index();
                let mut out = RegSet::new(num_regs);
                for s in kernel.successors(b.id) {
                    out.union_with(&live_in[s.index()]);
                }
                let mut inn = out.clone();
                inn.subtract(&kill[i]);
                inn.union_with(&gen[i]);
                if inn != live_in[i] {
                    live_in[i] = inn;
                    changed = true;
                }
                live_out[i] = out;
            }
        }
        Liveness {
            live_in,
            live_out,
            num_regs,
        }
    }

    /// The register capacity of this analysis's sets.
    pub fn num_regs(&self) -> u16 {
        self.num_regs
    }

    /// Registers live immediately *after* the instruction at `at` executes.
    ///
    /// Computed by a backward walk over the remainder of the block, so the
    /// cost is linear in the block length.
    ///
    /// # Panics
    ///
    /// Panics if `at` is out of range for the kernel.
    pub fn live_after(&self, kernel: &Kernel, at: InstrRef) -> RegSet {
        self.live_after_excluding(kernel, at, &ExcludedReads::new())
    }

    /// [`Liveness::live_after`] under an excluded-read set: covered reads do
    /// not resurrect a register on the backward walk. Only meaningful when
    /// `self` was built by [`Liveness::compute_excluding`] with the same set.
    pub fn live_after_excluding(
        &self,
        kernel: &Kernel,
        at: InstrRef,
        excluded: &ExcludedReads,
    ) -> RegSet {
        let block = kernel.block(at.block);
        let mut live = self.live_out[at.block.index()].clone();
        for (index, ins) in block.instrs.iter().enumerate().skip(at.index + 1).rev() {
            let here = InstrRef {
                block: at.block,
                index,
            };
            for r in strong_defs(ins) {
                live.remove(r);
            }
            for (slot, r) in ins.reg_srcs() {
                if !excluded.contains(&(here, slot.index())) {
                    live.insert(r);
                }
            }
        }
        live
    }

    /// Registers live immediately *before* the instruction at `at` executes.
    pub fn live_before(&self, kernel: &Kernel, at: InstrRef) -> RegSet {
        let mut live = self.live_after(kernel, at);
        let ins = kernel.instr(at);
        for r in strong_defs(ins) {
            live.remove(r);
        }
        for (_, r) in ins.reg_srcs() {
            live.insert(r);
        }
        live
    }
}

fn kill_contains(k: &RegSet, r: rfh_isa::Reg) -> bool {
    k.contains(r)
}

/// Sets the `dead_after` flag on every source operand that statically reads
/// the last use of a value (paper §2.2: liveness encoded in the binary).
///
/// An operand is dead after its instruction when the register is not live
/// after the instruction — including the case where the instruction itself
/// strongly redefines the register it reads.
pub fn annotate_dead(kernel: &mut Kernel, liveness: &Liveness) {
    annotate_dead_excluding(kernel, liveness, &ExcludedReads::new());
}

/// [`annotate_dead`] under an excluded-read set: covered reads neither keep
/// a register live on the backward walk nor block an earlier read's
/// `dead_after` flag, so strictly more reads are marked dead. `liveness`
/// must have been built by [`Liveness::compute_excluding`] with the same
/// set, or the flags are unsound.
pub fn annotate_dead_excluding(kernel: &mut Kernel, liveness: &Liveness, excluded: &ExcludedReads) {
    let block_ids: Vec<_> = kernel.blocks.iter().map(|b| b.id).collect();
    for id in block_ids {
        let mut live = liveness.live_out[id.index()].clone();
        let block = kernel.block_mut(id);
        for (index, ins) in block.instrs.iter_mut().enumerate().rev() {
            let at = InstrRef { block: id, index };
            for r in strong_defs(ins) {
                live.remove(r);
            }
            let flags: Vec<bool> = ins
                .srcs
                .iter()
                .map(|s| s.as_reg().map(|r| !live.contains(r)).unwrap_or(false))
                .collect();
            ins.dead_after.copy_from_slice(&flags);
            for (slot, r) in ins.reg_srcs() {
                if !excluded.contains(&(at, slot.index())) {
                    live.insert(r);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_isa::{parse_kernel, BlockId, Reg};

    fn r(i: u16) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn straight_line_liveness() {
        let k = parse_kernel(
            "
.kernel s
BB0:
  iadd r1 r0, 1
  iadd r2 r1, 1
  st.global r2, r1
  exit
",
        )
        .unwrap();
        let lv = Liveness::compute(&k);
        assert!(lv.live_in[0].contains(r(0)));
        assert!(!lv.live_in[0].contains(r(1)));
        assert!(lv.live_out[0].is_empty());
    }

    #[test]
    fn loop_carried_value_is_live_around_backedge() {
        let k = parse_kernel(
            "
.kernel l
BB0:
  mov r0, 0
  mov r1, 0
BB1:
  iadd r1 r1, 1
  iadd r0 r0, 2
  setp.lt p0 r0, 10
  @p0 bra BB1
BB2:
  st.global r0, r1
  exit
",
        )
        .unwrap();
        let lv = Liveness::compute(&k);
        // r0 and r1 are live into and out of the loop body.
        assert!(lv.live_in[1].contains(r(0)));
        assert!(lv.live_in[1].contains(r(1)));
        assert!(lv.live_out[1].contains(r(0)));
        assert!(lv.live_out[1].contains(r(1)));
        assert!(lv.live_out[2].is_empty());
    }

    #[test]
    fn guarded_def_does_not_kill() {
        let k = parse_kernel(
            "
.kernel g
BB0:
  @p0 mov r0, 1
  st.global r1, r0
  exit
",
        )
        .unwrap();
        let lv = Liveness::compute(&k);
        // r0 must be live-in: the guarded mov may not execute.
        assert!(lv.live_in[0].contains(r(0)));
    }

    #[test]
    fn live_after_mid_block() {
        let k = parse_kernel(
            "
.kernel m
BB0:
  iadd r1 r0, 1
  iadd r2 r0, 2
  st.global r1, r2
  exit
",
        )
        .unwrap();
        let lv = Liveness::compute(&k);
        let after_first = lv.live_after(
            &k,
            InstrRef {
                block: BlockId::new(0),
                index: 0,
            },
        );
        assert!(after_first.contains(r(0)), "r0 still read by next instr");
        assert!(after_first.contains(r(1)));
        let after_second = lv.live_after(
            &k,
            InstrRef {
                block: BlockId::new(0),
                index: 1,
            },
        );
        assert!(!after_second.contains(r(0)), "r0 dead after its last read");
    }

    #[test]
    fn annotate_dead_marks_last_reads() {
        let mut k = parse_kernel(
            "
.kernel d
BB0:
  iadd r1 r0, 1
  iadd r2 r0, 2
  st.global r1, r2
  exit
",
        )
        .unwrap();
        let lv = Liveness::compute(&k);
        annotate_dead(&mut k, &lv);
        let b = &k.blocks[0];
        assert!(!b.instrs[0].dead_after[0], "r0 read again later");
        assert!(b.instrs[1].dead_after[0], "second read of r0 is the last");
        assert!(b.instrs[2].dead_after[0], "store consumes r1 last");
        assert!(b.instrs[2].dead_after[1], "store consumes r2 last");
    }

    #[test]
    fn annotate_dead_self_redefinition() {
        let mut k = parse_kernel(
            "
.kernel sr
BB0:
  iadd r0 r0, 1
  st.global r1, r0
  exit
",
        )
        .unwrap();
        let lv = Liveness::compute(&k);
        annotate_dead(&mut k, &lv);
        // The read of the *old* r0 is dead after the redefining add.
        assert!(k.blocks[0].instrs[0].dead_after[0]);
    }

    #[test]
    fn immediates_never_marked_dead() {
        let mut k = parse_kernel(
            "
.kernel i
BB0:
  iadd r1 r0, 5
  exit
",
        )
        .unwrap();
        let lv = Liveness::compute(&k);
        annotate_dead(&mut k, &lv);
        assert!(!k.blocks[0].instrs[0].dead_after[1]);
    }
}
