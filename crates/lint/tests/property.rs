//! Property: the lint never **error**-flags a kernel from the seeded
//! random generator. Generator kernels define every register and
//! predicate before use, never emit barriers, and execute cleanly (the
//! generator's own tests prove that differentially) — so any
//! error-severity diagnostic on one would be a false positive. Warnings
//! are fine: the conservative race check may fire on the generator's
//! masked shared-memory traffic, and dead defs are common in random code.
//!
//! `RFH_LINT_PROP_CASES` scales the seed budget.

use rfh_lint::{lint_kernel, LintOptions, Severity};
use rfh_sim::exec::{execute, ExecMode};
use rfh_sim::sink::NullSink;
use rfh_workloads::generator::{random_program, GenConfig};

#[test]
fn lint_never_errors_on_clean_generated_kernels() {
    let cases = rfh_testkit::env::positive_usize_knob("RFH_LINT_PROP_CASES").unwrap_or(60);
    let options = LintOptions::default();
    for seed in 0..cases as u64 {
        let (kernel, launch, mem) = random_program(seed, GenConfig::default());
        rfh_isa::validate(&kernel).unwrap_or_else(|e| panic!("seed {seed}: invalid kernel: {e}"));

        // The ground truth: this kernel runs to completion.
        let mut m = mem.clone();
        let mut sink = NullSink;
        execute(
            &kernel,
            &launch,
            &mut m,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap_or_else(|e| panic!("seed {seed}: execution failed: {e}"));

        let errors: Vec<_> = lint_kernel(&kernel, &options)
            .into_iter()
            .filter(|d| d.severity() == Severity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "seed {seed}: lint error-flagged a kernel that executes cleanly: {errors:?}"
        );
    }
}
