//! One positive and one negative test per diagnostic code: every
//! RFH-L0xx check fires on a minimal kernel built to trip it, and stays
//! quiet on the closest clean variant. The kernels are hand-built with
//! [`KernelBuilder`] so each test documents exactly what the code means.

use rfh_isa::{ops, CmpOp, Kernel, KernelBuilder, Operand, PredReg, ReadLoc, Reg, Slot, WriteLoc};
use rfh_lint::{lint_kernel, Code, Diagnostic, LintOptions, Severity};

/// Lints a kernel under the default (paper best: 3-entry ORF, split LRF)
/// configuration, insisting it passes the structural validator first —
/// the same precondition `lint_kernel` documents.
fn lint(kernel: &Kernel) -> Vec<Diagnostic> {
    rfh_isa::validate(kernel).expect("test kernel must be structurally valid");
    lint_kernel(kernel, &LintOptions::default())
}

fn codes(diags: &[Diagnostic]) -> Vec<Code> {
    diags.iter().map(|d| d.code).collect()
}

fn tid() -> Operand {
    Operand::Special(rfh_isa::Special::TidX)
}

// ---------------------------------------------------------------- RFH-L001

#[test]
fn l001_flags_a_read_of_an_undefined_register() {
    let mut b = KernelBuilder::new("l001-pos");
    b.push(ops::iadd(Reg::new(1), Reg::new(2).into(), Operand::Imm(1)));
    b.push(ops::st_global(Operand::Imm(0), Reg::new(1).into()));
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        codes(&diags).contains(&Code::UseBeforeDef),
        "r2 is never defined: {diags:?}"
    );
    assert_eq!(Code::UseBeforeDef.severity(), Severity::Error);
}

#[test]
fn l001_accepts_a_guarded_use_covered_by_a_same_guard_def() {
    // The def of r1 is guarded by @p0; every use is guarded by the same
    // predicate, and p0 is not redefined in between. A path-insensitive
    // check would flag this — the predication-aware lattice must not.
    let mut b = KernelBuilder::new("l001-neg");
    b.push(ops::mov(Reg::new(0), tid()));
    b.push(ops::setp(
        CmpOp::Lt,
        PredReg::new(0),
        Reg::new(0).into(),
        Operand::Imm(5),
    ));
    b.push(ops::mov(Reg::new(1), Operand::Imm(7)).guarded(PredReg::new(0), false));
    b.push(
        ops::iadd(Reg::new(2), Reg::new(1).into(), Operand::Imm(1)).guarded(PredReg::new(0), false),
    );
    b.push(ops::st_global(Operand::Imm(0), Reg::new(2).into()).guarded(PredReg::new(0), false));
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        !codes(&diags).contains(&Code::UseBeforeDef),
        "guarded def covers guarded uses: {diags:?}"
    );
}

// ---------------------------------------------------------------- RFH-L002

#[test]
fn l002_flags_an_unreachable_block() {
    let mut b = KernelBuilder::new("l002-pos");
    b.push(ops::exit());
    let dead = b.add_block();
    b.switch_to(dead);
    b.push(ops::exit());
    let diags = lint(&b.finish());
    let hit = diags
        .iter()
        .find(|d| d.code == Code::UnreachableBlock)
        .expect("BB1 is unreachable from entry");
    assert_eq!(hit.block, dead, "the diagnostic names the dead block");
    assert_eq!(Code::UnreachableBlock.severity(), Severity::Warning);
}

#[test]
fn l002_accepts_a_fully_reachable_cfg() {
    let mut b = KernelBuilder::new("l002-neg");
    b.push(ops::mov(Reg::new(0), tid()));
    b.push(ops::setp(
        CmpOp::Lt,
        PredReg::new(0),
        Reg::new(0).into(),
        Operand::Imm(5),
    ));
    let cur = b.current();
    let then_side = b.add_block();
    let merge = b.add_block();
    b.switch_to(cur);
    b.push(ops::bra_if(PredReg::new(0), true, merge));
    b.switch_to(then_side);
    b.push(ops::mov(Reg::new(1), Operand::Imm(1)));
    b.switch_to(merge);
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        !codes(&diags).contains(&Code::UnreachableBlock),
        "both branch arms are reachable: {diags:?}"
    );
}

// ---------------------------------------------------------------- RFH-L003

#[test]
fn l003_flags_a_definition_that_is_never_read() {
    let mut b = KernelBuilder::new("l003-pos");
    b.push(ops::mov(Reg::new(1), Operand::Imm(5)));
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        codes(&diags).contains(&Code::DeadDef),
        "r1 is defined and never read: {diags:?}"
    );
    assert_eq!(Code::DeadDef.severity(), Severity::Warning);
}

#[test]
fn l003_accepts_a_definition_observed_by_a_store() {
    let mut b = KernelBuilder::new("l003-neg");
    b.push(ops::mov(Reg::new(1), Operand::Imm(5)));
    b.push(ops::st_global(Operand::Imm(0), Reg::new(1).into()));
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        !codes(&diags).contains(&Code::DeadDef),
        "the store reads r1: {diags:?}"
    );
}

// ---------------------------------------------------------------- RFH-L004

#[test]
fn l004_flags_a_barrier_guarded_by_a_thread_dependent_predicate() {
    let mut b = KernelBuilder::new("l004-pos");
    b.push(ops::mov(Reg::new(0), tid()));
    b.push(ops::setp(
        CmpOp::Lt,
        PredReg::new(0),
        Reg::new(0).into(),
        Operand::Imm(5),
    ));
    b.push(ops::bar().guarded(PredReg::new(0), false));
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        codes(&diags).contains(&Code::BarrierDivergence),
        "threads with tid >= 5 skip the barrier: {diags:?}"
    );
    assert_eq!(Code::BarrierDivergence.severity(), Severity::Error);
}

#[test]
fn l004_accepts_a_barrier_guarded_by_a_uniform_predicate() {
    // The guard is computed from an immediate, so every thread in the
    // block agrees on it: all threads arrive or none do.
    let mut b = KernelBuilder::new("l004-neg");
    b.push(ops::mov(Reg::new(0), Operand::Imm(7)));
    b.push(ops::setp(
        CmpOp::Lt,
        PredReg::new(0),
        Reg::new(0).into(),
        Operand::Imm(5),
    ));
    b.push(ops::bar().guarded(PredReg::new(0), false));
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        !codes(&diags).contains(&Code::BarrierDivergence),
        "a uniform guard cannot diverge: {diags:?}"
    );
}

// ---------------------------------------------------------------- RFH-L005

#[test]
fn l005_flags_a_store_and_load_with_no_intervening_barrier() {
    // Thread t stores to address t while every thread loads address 0:
    // thread 1's load races thread 0's store.
    let mut b = KernelBuilder::new("l005-pos");
    b.push(ops::mov(Reg::new(0), tid()));
    b.push(ops::st_shared(Reg::new(0).into(), Operand::Imm(1)));
    b.push(ops::ld_shared(Reg::new(1), Operand::Imm(0)));
    b.push(ops::st_global(Operand::Imm(0), Reg::new(1).into()));
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        codes(&diags).contains(&Code::SharedRace),
        "the load of address 0 races thread 0's store: {diags:?}"
    );
    assert_eq!(Code::SharedRace.severity(), Severity::Warning);
}

#[test]
fn l005_accepts_the_same_accesses_separated_by_a_barrier() {
    let mut b = KernelBuilder::new("l005-neg");
    b.push(ops::mov(Reg::new(0), tid()));
    b.push(ops::st_shared(Reg::new(0).into(), Operand::Imm(1)));
    b.push(ops::bar());
    b.push(ops::ld_shared(Reg::new(1), Operand::Imm(0)));
    b.push(ops::st_global(Operand::Imm(0), Reg::new(1).into()));
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        !codes(&diags).contains(&Code::SharedRace),
        "the barrier orders the store before every load: {diags:?}"
    );
}

// ---------------------------------------------------------------- RFH-L006

#[test]
fn l006_flags_a_unified_lrf_read_under_a_split_lrf_config() {
    let mut b = KernelBuilder::new("l006-pos");
    b.push(ops::mov(Reg::new(1), Operand::Imm(5)));
    b.push(ops::iadd(Reg::new(2), Reg::new(1).into(), Operand::Imm(1)));
    b.push(ops::st_global(Operand::Imm(0), Reg::new(2).into()));
    b.push(ops::exit());
    let mut k = b.finish();
    // Hand-annotate what a buggy allocator might emit: an LRF write into
    // slot bank A, read back with the *unified* LRF marker even though
    // the default configuration is a split LRF.
    k.blocks[0].instrs[0].write_loc = WriteLoc::Lrf {
        bank: Some(Slot::A),
        also_mrf: true,
    };
    k.blocks[0].instrs[1].read_locs[0] = ReadLoc::Lrf(None);
    let diags = lint(&k);
    assert!(
        codes(&diags).contains(&Code::LrfMisuse),
        "Lrf(None) is the unified marker, the config is split: {diags:?}"
    );
    assert_eq!(Code::LrfMisuse.severity(), Severity::Error);
}

#[test]
fn l006_and_l007_accept_real_allocator_output() {
    // The strongest negative: everything the real allocator produces for
    // a real workload must pass the static placement checks.
    let w = rfh_workloads::by_name("matrixmul").expect("known workload");
    let config = rfh_alloc::AllocConfig::default();
    let model = rfh_energy::EnergyModel::paper();
    let mut k = w.kernel.clone();
    rfh_alloc::allocate(&mut k, &config, &model).expect("allocation succeeds");
    let diags = lint_kernel(
        &k,
        &LintOptions {
            alloc: config,
            ..Default::default()
        },
    );
    assert!(
        !codes(&diags).contains(&Code::LrfMisuse) && !codes(&diags).contains(&Code::OrfConflict),
        "allocator output must satisfy the placement contract: {diags:?}"
    );
}

// ---------------------------------------------------------------- RFH-L007

#[test]
fn l007_flags_an_orf_entry_out_of_range() {
    let mut b = KernelBuilder::new("l007-pos-range");
    b.push(ops::mov(Reg::new(1), Operand::Imm(5)));
    b.push(ops::st_global(Operand::Imm(0), Reg::new(1).into()));
    b.push(ops::exit());
    let mut k = b.finish();
    k.blocks[0].instrs[0].write_loc = WriteLoc::Orf {
        entry: 7, // default config has 3 entries
        also_mrf: true,
    };
    let diags = lint(&k);
    assert!(
        codes(&diags).contains(&Code::OrfConflict),
        "ORF entry 7 does not exist in a 3-entry ORF: {diags:?}"
    );
    assert_eq!(Code::OrfConflict.severity(), Severity::Error);
}

#[test]
fn l007_flags_a_stale_mrf_read_after_an_orf_only_write() {
    // The def goes to the ORF without the simultaneous MRF copy
    // (`also_mrf: false`), but a later read is annotated MRF: it would
    // observe whatever the MRF held before the strand.
    let mut b = KernelBuilder::new("l007-pos-stale");
    b.push(ops::mov(Reg::new(1), Operand::Imm(5)));
    b.push(ops::st_global(Operand::Imm(0), Reg::new(1).into()));
    b.push(ops::exit());
    let mut k = b.finish();
    k.blocks[0].instrs[0].write_loc = WriteLoc::Orf {
        entry: 0,
        also_mrf: false,
    };
    let diags = lint(&k);
    assert!(
        codes(&diags).contains(&Code::OrfConflict),
        "the MRF copy of r1 is stale: {diags:?}"
    );
}

#[test]
fn l007_accepts_an_orf_write_with_a_simultaneous_mrf_copy() {
    let mut b = KernelBuilder::new("l007-neg");
    b.push(ops::mov(Reg::new(1), Operand::Imm(5)));
    b.push(ops::st_global(Operand::Imm(0), Reg::new(1).into()));
    b.push(ops::exit());
    let mut k = b.finish();
    k.blocks[0].instrs[0].write_loc = WriteLoc::Orf {
        entry: 0,
        also_mrf: true,
    };
    let diags = lint(&k);
    assert!(
        !codes(&diags).contains(&Code::OrfConflict),
        "`also_mrf` keeps the MRF copy fresh: {diags:?}"
    );
}

// ---------------------------------------------------------------- RFH-L008

#[test]
fn l008_flags_a_strand_whose_demand_exceeds_the_hierarchy_capacity() {
    // Ten simultaneously-live single-width values plus an accumulator in
    // one strand, against a capacity of 6 slots (3 ORF entries + 3 split
    // LRF banks): the allocator must keep values in the MRF.
    let mut b = KernelBuilder::new("l008-pos");
    for i in 0..10u16 {
        b.push(ops::mov(Reg::new(1 + i), Operand::Imm(i32::from(i))));
    }
    b.push(ops::mov(Reg::new(11), Operand::Imm(0)));
    for i in 0..10u16 {
        b.push(ops::iadd(
            Reg::new(11),
            Reg::new(11).into(),
            Reg::new(1 + i).into(),
        ));
    }
    b.push(ops::st_global(Operand::Imm(0), Reg::new(11).into()));
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        codes(&diags).contains(&Code::Pressure),
        "eleven overlapping live ranges cannot fit 6 slots: {diags:?}"
    );
    assert_eq!(Code::Pressure.severity(), Severity::Warning);
}

#[test]
fn l008_accepts_a_strand_that_fits_the_hierarchy() {
    let mut b = KernelBuilder::new("l008-neg");
    b.push(ops::mov(Reg::new(1), Operand::Imm(5)));
    b.push(ops::iadd(Reg::new(2), Reg::new(1).into(), Operand::Imm(1)));
    b.push(ops::st_global(Operand::Imm(0), Reg::new(2).into()));
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        !codes(&diags).contains(&Code::Pressure),
        "two live values fit comfortably: {diags:?}"
    );
}

// ---------------------------------------------------------------- RFH-L009

#[test]
fn l009_flags_a_shared_access_provably_past_the_array() {
    // Address 9000 is a compile-time constant past the default 8192-word
    // shared memory: every executing lane faults.
    let mut b = KernelBuilder::new("l009-pos");
    b.push(ops::ld_shared(Reg::new(1), Operand::Imm(9000)));
    b.push(ops::st_global(Operand::Imm(0), Reg::new(1).into()));
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        codes(&diags).contains(&Code::SharedOob),
        "word 9000 is outside the 8192-word shared memory: {diags:?}"
    );
    assert_eq!(Code::SharedOob.severity(), Severity::Error);
}

#[test]
fn l009_accepts_in_bounds_and_unbounded_shared_accesses() {
    // A constant in-bounds index and a tid-dependent index whose interval
    // overlaps the array: neither is *provably* out of bounds.
    let mut b = KernelBuilder::new("l009-neg");
    b.push(ops::mov(Reg::new(0), tid()));
    b.push(ops::ld_shared(Reg::new(1), Operand::Imm(10)));
    b.push(ops::ld_shared(Reg::new(2), Reg::new(0).into()));
    b.push(ops::iadd(
        Reg::new(3),
        Reg::new(1).into(),
        Reg::new(2).into(),
    ));
    b.push(ops::st_global(Operand::Imm(0), Reg::new(3).into()));
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        !codes(&diags).contains(&Code::SharedOob),
        "neither access is provably out of bounds: {diags:?}"
    );
}

// ---------------------------------------------------------------- RFH-L010

#[test]
fn l010_flags_a_provably_uniform_branch_on_a_thread_derived_predicate() {
    // `tid & ~31` equals `32 * warp`: thread-derived (so the coarse taint
    // analysis calls it non-uniform) but warp-uniform under the abstract
    // interpreter — the branch can never split a warp.
    let mut b = KernelBuilder::new("l010-pos");
    b.push(ops::mov(Reg::new(0), tid()));
    b.push(ops::and(Reg::new(1), Reg::new(0).into(), Operand::Imm(-32)));
    b.push(ops::setp(
        CmpOp::Lt,
        PredReg::new(0),
        Reg::new(1).into(),
        Operand::Imm(64),
    ));
    let cur = b.current();
    let then_side = b.add_block();
    let merge = b.add_block();
    b.switch_to(cur);
    b.push(ops::bra_if(PredReg::new(0), true, merge));
    b.switch_to(then_side);
    b.push(ops::mov(Reg::new(2), Operand::Imm(1)));
    b.push(ops::st_global(Operand::Imm(0), Reg::new(2).into()));
    b.switch_to(merge);
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        codes(&diags).contains(&Code::UniformBranch),
        "the guard is warp-uniform despite its tid lineage: {diags:?}"
    );
    assert_eq!(Code::UniformBranch.severity(), Severity::Warning);
}

#[test]
fn l010_accepts_a_branch_that_really_diverges() {
    // The guard compares raw `tid` — genuinely per-thread, so the branch
    // can split a warp and no finding is produced.
    let mut b = KernelBuilder::new("l010-neg");
    b.push(ops::mov(Reg::new(0), tid()));
    b.push(ops::setp(
        CmpOp::Lt,
        PredReg::new(0),
        Reg::new(0).into(),
        Operand::Imm(5),
    ));
    let cur = b.current();
    let then_side = b.add_block();
    let merge = b.add_block();
    b.switch_to(cur);
    b.push(ops::bra_if(PredReg::new(0), true, merge));
    b.switch_to(then_side);
    b.push(ops::mov(Reg::new(1), Operand::Imm(1)));
    b.push(ops::st_global(Operand::Imm(0), Reg::new(1).into()));
    b.switch_to(merge);
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        !codes(&diags).contains(&Code::UniformBranch),
        "a genuinely divergent branch must not be flagged: {diags:?}"
    );
}

// ---------------------------------------------------------------- RFH-L011

#[test]
fn l011_notes_a_constant_foldable_alu_op() {
    let mut b = KernelBuilder::new("l011-pos");
    b.push(ops::mov(Reg::new(0), Operand::Imm(5)));
    b.push(ops::iadd(Reg::new(1), Reg::new(0).into(), Operand::Imm(2)));
    b.push(ops::st_global(Operand::Imm(0), Reg::new(1).into()));
    b.push(ops::exit());
    let diags = lint(&b.finish());
    let hit = diags
        .iter()
        .find(|d| d.code == Code::ConstFold)
        .expect("iadd of two constants always computes 7");
    assert_eq!(hit.severity(), Severity::Note, "L011 is informational");
    assert!(hit.message.contains("0x7"), "names the constant: {hit:?}");
}

#[test]
fn l011_stays_quiet_on_data_dependent_arithmetic() {
    let mut b = KernelBuilder::new("l011-neg");
    b.push(ops::mov(Reg::new(0), tid()));
    b.push(ops::iadd(Reg::new(1), Reg::new(0).into(), Operand::Imm(2)));
    b.push(ops::st_global(Operand::Imm(0), Reg::new(1).into()));
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        !codes(&diags).contains(&Code::ConstFold),
        "tid + 2 is not a constant: {diags:?}"
    );
}

// ------------------------------------------- RFH-L005 absint sharpening

#[test]
fn l005_interval_disjointness_suppresses_and_notes_nonaffine_indices() {
    // The load index `(tid >> 28) + 8` is beyond the affine resolver
    // (shifts of tid are not affine), so classically it may-aliases the
    // store — but its interval is [8, 15] while the store's `0 - tid` is
    // never positive, so the pair is provably disjoint. The unverifiable
    // load index must still surface as a note.
    let mut b = KernelBuilder::new("l005-sharpen");
    b.push(ops::mov(Reg::new(0), tid()));
    b.push(ops::shr(Reg::new(1), Reg::new(0).into(), Operand::Imm(28)));
    b.push(ops::iadd(Reg::new(2), Reg::new(1).into(), Operand::Imm(8)));
    b.push(ops::ld_shared(Reg::new(3), Reg::new(2).into()));
    b.push(ops::isub(Reg::new(4), Operand::Imm(0), Reg::new(0).into()));
    b.push(ops::st_shared(Reg::new(4).into(), Reg::new(3).into()));
    b.push(ops::exit());
    let diags = lint(&b.finish());
    assert!(
        !diags
            .iter()
            .any(|d| d.code == Code::SharedRace && d.severity() == Severity::Warning),
        "disjoint intervals prove the pair race-free: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.code == Code::SharedRace
            && d.severity() == Severity::Note
            && d.message.contains("unverifiable")),
        "the non-affine load index must be noted: {diags:?}"
    );
}
