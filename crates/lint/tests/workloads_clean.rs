//! Every registered workload lints with **zero errors** — before and
//! after allocation under the paper's best configuration. Warnings are
//! allowed (the `reduction` tree has unavoidably conservative race
//! findings, and several kernels legitimately exceed the upper-level
//! capacity), but an error on shipped-and-passing workload code would be
//! a false positive by construction: every workload also passes the
//! differential execution suite.

use rfh_lint::{lint_kernel, LintOptions, Severity};

#[test]
fn all_workloads_lint_without_errors() {
    let config = rfh_alloc::AllocConfig::default();
    let model = rfh_energy::EnergyModel::paper();
    let options = LintOptions {
        alloc: config,
        ..Default::default()
    };
    let workloads = rfh_workloads::all();
    assert!(workloads.len() >= 35, "workload registry shrank");

    for w in &workloads {
        let errors: Vec<_> = lint_kernel(&w.kernel, &options)
            .into_iter()
            .filter(|d| d.severity() == Severity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "workload {} lints with errors before allocation: {errors:?}",
            w.name
        );

        let mut allocated = w.kernel.clone();
        rfh_alloc::allocate(&mut allocated, &config, &model)
            .unwrap_or_else(|e| panic!("workload {} fails to allocate: {e}", w.name));
        let errors: Vec<_> = lint_kernel(&allocated, &options)
            .into_iter()
            .filter(|d| d.severity() == Severity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "workload {} lints with errors after allocation: {errors:?}",
            w.name
        );
    }
}
