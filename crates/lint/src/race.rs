//! RFH-L005 — statically detectable shared-memory races.
//!
//! Conservative, thread-index-offset based: every shared-memory address is
//! resolved to the affine form `coef * tid + off` where possible. Two
//! accesses in the same *barrier interval* (both reachable from one
//! synchronization point without crossing another `bar`), at least one of
//! them a store, race unless the address forms prove all threads stay
//! disjoint:
//!
//! * same nonzero `coef`, and `off` difference not a nonzero multiple of
//!   `coef` — each thread stays in its own lane;
//! * both uniform (`coef == 0`) at *different* offsets.
//!
//! Everything else — unresolvable addresses, mixed strides, a uniform
//! address written by every thread — is flagged. Guards are ignored
//! (predication that partitions threads across disjoint ranges is beyond
//! this analysis), so the check over-approximates: findings are warnings.
//!
//! Two abstract-interpretation refinements sharpen the check:
//!
//! * a colliding pair is **suppressed** when the two accesses' address
//!   intervals (from `rfh_analysis::absint`) are disjoint — no thread of
//!   one access can touch a word of the other, whatever the strides;
//! * every access whose index the affine resolver cannot express emits a
//!   note-severity "unverifiable index" finding, so a silent may-alias
//!   assumption is visible in the report.

use std::collections::BTreeSet;

use rfh_analysis::absint::AbsResults;
use rfh_analysis::DomTree;
use rfh_isa::{InstrRef, Kernel, Opcode, Operand, Reg, Space, Special};

use crate::diag::{Code, Diagnostic};

/// An address as an affine function of the thread index, if resolvable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Addr {
    Affine { coef: i64, off: i64 },
    Unknown,
}

const MAX_RESOLVE_DEPTH: usize = 16;

/// Resolves the value of `reg` as seen by the instruction at `at`,
/// following unguarded definitions backward within the block and, failing
/// that, a unique unguarded definition elsewhere in the kernel.
fn resolve_reg(kernel: &Kernel, at: InstrRef, reg: Reg, depth: usize) -> Addr {
    if depth == 0 {
        return Addr::Unknown;
    }
    let block = kernel.block(at.block);
    for index in (0..at.index).rev() {
        let instr = &block.instrs[index];
        if instr.def_regs().any(|r| r == reg) {
            if instr.guard.is_some() {
                return Addr::Unknown;
            }
            return eval_def(
                kernel,
                InstrRef {
                    block: at.block,
                    index,
                },
                reg,
                depth,
            );
        }
    }
    // Not defined earlier in this block: usable only if the kernel has
    // exactly one unguarded definition of the register anywhere.
    let mut defs = kernel
        .iter_instrs()
        .filter(|(_, i)| i.def_regs().any(|r| r == reg));
    let (def_at, def) = match (defs.next(), defs.next()) {
        (Some(d), None) => d,
        _ => return Addr::Unknown,
    };
    if def.guard.is_some() {
        return Addr::Unknown;
    }
    eval_def(kernel, def_at, reg, depth)
}

/// Evaluates the definition at `def_at` (known to define `reg`).
fn eval_def(kernel: &Kernel, def_at: InstrRef, reg: Reg, depth: usize) -> Addr {
    let instr = kernel.instr(def_at);
    // Only the low word of a wide definition has a simple value.
    if instr.dst.map(|d| d.reg) != Some(reg) {
        return Addr::Unknown;
    }
    let operand = |slot: usize| -> Addr { eval_operand(kernel, def_at, slot, depth - 1) };
    match instr.op {
        Opcode::Mov => operand(0),
        Opcode::IAdd => add(operand(0), operand(1), 1),
        Opcode::ISub => add(operand(0), operand(1), -1),
        Opcode::IMul => mul(operand(0), operand(1)),
        Opcode::Shl => match (operand(0), operand(1)) {
            (a, Addr::Affine { coef: 0, off: sh }) if (0..31).contains(&sh) => mul(
                a,
                Addr::Affine {
                    coef: 0,
                    off: 1 << sh,
                },
            ),
            _ => Addr::Unknown,
        },
        _ => Addr::Unknown,
    }
}

fn eval_operand(kernel: &Kernel, at: InstrRef, slot: usize, depth: usize) -> Addr {
    match kernel.instr(at).srcs.get(slot) {
        Some(Operand::Imm(v)) => Addr::Affine {
            coef: 0,
            off: *v as i64,
        },
        Some(Operand::Special(Special::TidX)) => Addr::Affine { coef: 1, off: 0 },
        Some(Operand::Reg(r)) => resolve_reg(kernel, at, *r, depth),
        _ => Addr::Unknown,
    }
}

fn add(a: Addr, b: Addr, sign: i64) -> Addr {
    match (a, b) {
        (Addr::Affine { coef: ca, off: oa }, Addr::Affine { coef: cb, off: ob }) => Addr::Affine {
            coef: ca + sign * cb,
            off: oa + sign * ob,
        },
        _ => Addr::Unknown,
    }
}

fn mul(a: Addr, b: Addr) -> Addr {
    match (a, b) {
        (Addr::Affine { coef: 0, off: k }, Addr::Affine { coef, off })
        | (Addr::Affine { coef, off }, Addr::Affine { coef: 0, off: k }) => Addr::Affine {
            coef: coef * k,
            off: off * k,
        },
        _ => Addr::Unknown,
    }
}

/// One shared-memory access.
#[derive(Debug, Clone, Copy)]
struct Access {
    at: InstrRef,
    is_store: bool,
    addr: Addr,
}

/// Can threads collide at these two address forms? (`self_pair`: the two
/// accesses are the same instruction executed by different threads.)
fn may_collide(a: Addr, b: Addr, self_pair: bool) -> bool {
    match (a, b) {
        (Addr::Affine { coef: ca, off: oa }, Addr::Affine { coef: cb, off: ob }) if ca == cb => {
            if ca == 0 {
                // Uniform addresses: every thread hits `off`.
                oa == ob
            } else if self_pair || oa == ob {
                // Same stride, same offset: collisions require the
                // same thread index.
                false
            } else {
                // Same stride, different offsets: threads t and t' with
                // coef * (t - t') == ob - oa collide.
                (ob - oa) % ca == 0
            }
        }
        // Mixed strides (e.g. broadcast slot vs. per-thread lane), or at
        // least one unresolvable address.
        _ => true,
    }
}

/// Instruction positions reachable from `start` (inclusive) without
/// crossing a barrier: one barrier interval.
fn interval_from(kernel: &Kernel, start: InstrRef) -> Vec<InstrRef> {
    let mut out = Vec::new();
    let mut visited_blocks = vec![false; kernel.blocks.len()];
    let mut work = vec![start];
    while let Some(at) = work.pop() {
        if at.index == 0 {
            if visited_blocks[at.block.index()] {
                continue;
            }
            visited_blocks[at.block.index()] = true;
        }
        let block = kernel.block(at.block);
        let mut crossed_bar = false;
        for index in at.index..block.instrs.len() {
            if block.instrs[index].op.is_barrier() {
                crossed_bar = true;
                break;
            }
            out.push(InstrRef {
                block: at.block,
                index,
            });
        }
        if !crossed_bar {
            for succ in kernel.successors(at.block) {
                if !visited_blocks[succ.index()] {
                    work.push(InstrRef {
                        block: succ,
                        index: 0,
                    });
                }
            }
        }
    }
    out
}

/// Runs the check, appending RFH-L005 findings to `diags`.
pub(crate) fn check(kernel: &Kernel, dom: &DomTree, res: &AbsResults, diags: &mut Vec<Diagnostic>) {
    let accesses: Vec<Access> = kernel
        .iter_instrs()
        .filter(|(at, _)| dom.is_reachable(at.block))
        .filter_map(|(at, i)| {
            let is_store = match i.op {
                Opcode::Ld(Space::Shared) => false,
                Opcode::St(Space::Shared) => true,
                _ => return None,
            };
            Some(Access {
                at,
                is_store,
                addr: match i.srcs.first() {
                    Some(Operand::Reg(r)) => resolve_reg(kernel, at, *r, MAX_RESOLVE_DEPTH),
                    Some(other) => eval_const_operand(*other),
                    None => Addr::Unknown,
                },
            })
        })
        .collect();

    // Indices the affine resolver could not verify participate in every
    // race decision as may-alias; surface that assumption as a note,
    // quoting the abstract interval when it narrows the range at all.
    for a in &accesses {
        if a.addr != Addr::Unknown {
            continue;
        }
        let iv = res.fact(a.at).srcs[0];
        let range = if iv.lo != i32::MIN || iv.hi != i32::MAX {
            format!(" (abstract word range [{}, {}])", iv.lo, iv.hi)
        } else {
            String::new()
        };
        diags.push(Diagnostic::note_at(
            Code::SharedRace,
            a.at,
            format!(
                "shared-memory access `{}` has an unverifiable (non-affine) index{range}: \
                 the race analysis treats it as may-alias with every other shared access",
                kernel.instr(a.at)
            ),
        ));
    }

    if !accesses.iter().any(|a| a.is_store) {
        return;
    }

    // Barrier-interval start points: the kernel entry and the position
    // just after every barrier.
    let mut starts: Vec<InstrRef> = vec![InstrRef {
        block: kernel.entry(),
        index: 0,
    }];
    for (at, i) in kernel.iter_instrs() {
        if i.op.is_barrier() && dom.is_reachable(at.block) {
            let block_len = kernel.block(at.block).instrs.len();
            if at.index + 1 < block_len {
                starts.push(InstrRef {
                    block: at.block,
                    index: at.index + 1,
                });
            } else {
                for s in kernel.successors(at.block) {
                    starts.push(InstrRef { block: s, index: 0 });
                }
            }
        }
    }

    let mut reported: BTreeSet<(InstrRef, InstrRef)> = BTreeSet::new();
    for start in starts {
        let interval = interval_from(kernel, start);
        let here: Vec<&Access> = accesses
            .iter()
            .filter(|a| interval.contains(&a.at))
            .collect();
        for (i, a) in here.iter().enumerate() {
            for b in here.iter().skip(i) {
                if !a.is_store && !b.is_store {
                    continue;
                }
                let self_pair = a.at == b.at;
                if !may_collide(a.addr, b.addr, self_pair) {
                    continue;
                }
                // Interval sharpening: two distinct accesses with disjoint
                // address intervals cannot alias, whatever the strides.
                // (A self-pair shares one interval, so disjointness can
                // never clear it.)
                if !self_pair {
                    let (ia, ib) = (res.fact(a.at).srcs[0], res.fact(b.at).srcs[0]);
                    if ia.hi < ib.lo || ib.hi < ia.lo {
                        continue;
                    }
                }
                let key = (a.at.min(b.at), a.at.max(b.at));
                if !reported.insert(key) {
                    continue;
                }
                let (store, other) = if a.is_store { (a, b) } else { (b, a) };
                let msg = if self_pair {
                    format!(
                        "shared-memory store `{}` may race with itself across threads \
                         (address not provably thread-private, no intervening barrier)",
                        kernel.instr(store.at)
                    )
                } else {
                    format!(
                        "shared-memory store `{}` may race with the access `{}` at {} \
                         (no intervening barrier proves the threads disjoint)",
                        kernel.instr(store.at),
                        kernel.instr(other.at),
                        other.at
                    )
                };
                diags.push(Diagnostic::at(Code::SharedRace, store.at, msg));
            }
        }
    }
}

fn eval_const_operand(op: Operand) -> Addr {
    match op {
        Operand::Imm(v) => Addr::Affine {
            coef: 0,
            off: v as i64,
        },
        Operand::Special(Special::TidX) => Addr::Affine { coef: 1, off: 0 },
        _ => Addr::Unknown,
    }
}
