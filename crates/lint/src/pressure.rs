//! RFH-L008 — ORF/LRF pressure: predicting, *before* allocation runs,
//! where the upper levels are oversubscribed.
//!
//! Runs the allocator's own front half — strand marking, liveness, and the
//! per-strand def-use summary — and then counts, per strand, how many
//! upper-level candidates are simultaneously live at the point of peak
//! demand, using the same half-slot occupancy intervals as the ORF pass
//! (`rfh_alloc::pass`): a value occupies `[2·def+1, 2·last_read]`, a
//! read-operand fill `[2·first_read+1, 2·last_read]`. When the peak
//! exceeds the configured capacity (ORF entries plus LRF banks), some
//! candidates must stay in the MRF — the same occupancy pressure that
//! drives the allocator's spill decisions, surfaced as a warning so the
//! capacity can be revisited without rerunning the allocator sweep.
//!
//! Abstract interpretation sharpens the check: strands in blocks the
//! interpreter proves unreachable (dead branch edges) are skipped — dead
//! code cannot oversubscribe a register file.

use rfh_alloc::{AllocConfig, LrfMode};
use rfh_analysis::absint::AbsResults;
use rfh_analysis::defuse::all_strand_values;
use rfh_analysis::strand::StrandInfo;
use rfh_analysis::{Liveness, StrandValues};
use rfh_isa::Kernel;

use crate::diag::{Code, Diagnostic};

/// Half-slot occupancy interval of one upper-level candidate.
struct Interval {
    begin: usize,
    end: usize,
    slots: usize,
}

/// The candidate intervals of one strand, mirroring the ORF pass's
/// eligibility rules (mixed-width or mixed-root merge groups and
/// single-read operands never become candidates).
fn candidate_intervals(sv: &StrandValues) -> Vec<Interval> {
    let mut out = Vec::new();
    for members in &sv.groups {
        let mut widths: Vec<_> = members.iter().map(|&m| sv.instances[m].width).collect();
        widths.dedup();
        let mut roots: Vec<_> = members.iter().map(|&m| sv.instances[m].reg).collect();
        roots.sort();
        roots.dedup();
        if widths.len() != 1 || roots.len() != 1 {
            continue;
        }
        let def = members
            .iter()
            .map(|&m| sv.instances[m].def_pos)
            .min()
            .expect("merge groups are nonempty");
        let last = members
            .iter()
            .map(|&m| sv.instances[m].last_read_pos())
            .max()
            .expect("merge groups are nonempty");
        let begin = 2 * def + 1;
        out.push(Interval {
            begin,
            end: (2 * last).max(begin),
            slots: widths[0].regs() as usize,
        });
    }
    for ro in &sv.read_operands {
        if ro.reads.len() < 2 {
            continue; // a fill serving one read saves nothing
        }
        let first = ro.reads[0].pos;
        let last = ro.reads.last().expect("reads are nonempty").pos;
        let begin = 2 * first + 1;
        out.push(Interval {
            begin,
            end: (2 * last).max(begin),
            slots: 1,
        });
    }
    out
}

/// Peak number of simultaneously-occupied slots across the intervals.
fn peak_demand(intervals: &[Interval]) -> usize {
    let mut events: Vec<(usize, isize)> = Vec::new();
    for iv in intervals {
        events.push((iv.begin, iv.slots as isize));
        events.push((iv.end + 1, -(iv.slots as isize)));
    }
    // Ends sort before begins at the same position: `[a, b]` and `[b+1, c]`
    // can share a slot.
    events.sort();
    let (mut cur, mut peak) = (0isize, 0isize);
    for (_, delta) in events {
        cur += delta;
        peak = peak.max(cur);
    }
    peak.max(0) as usize
}

/// Runs the check, appending RFH-L008 findings to `diags`.
///
/// `marked` is the strand-marked clone (and `info`/`res` its strand map
/// and abstract-interpretation results) that [`crate::lint_kernel`]
/// prepares once and shares across the absint-driven checks. Strands
/// whose code the abstract interpreter proves unreachable — blocks only
/// enterable over dead edges — never execute, so their demand cannot
/// oversubscribe anything and they are skipped.
pub(crate) fn check(
    marked: &Kernel,
    info: &StrandInfo,
    config: &AllocConfig,
    res: &AbsResults,
    diags: &mut Vec<Diagnostic>,
) {
    let capacity = config.orf_entries
        + match config.lrf {
            LrfMode::None => 0,
            LrfMode::Unified => 1,
            LrfMode::Split => 3,
        };
    if capacity == 0 {
        return; // the MRF baseline has nothing to oversubscribe
    }
    let liveness = Liveness::compute(marked);
    for sv in all_strand_values(marked, info, &liveness) {
        let first = info.strand(sv.strand).instrs[0];
        if !res.block_reachable[first.block.index()] {
            continue; // proven-dead code exerts no pressure
        }
        let intervals = candidate_intervals(&sv);
        let peak = peak_demand(&intervals);
        if peak <= capacity {
            continue;
        }
        diags.push(Diagnostic::at(
            Code::Pressure,
            first,
            format!(
                "strand starting here has a peak upper-level demand of {peak} register \
                 slots against a capacity of {capacity} ({} ORF entries, {}): the \
                 allocator will keep at least {} value(s) in the MRF",
                config.orf_entries,
                config.lrf,
                peak - capacity
            ),
        ));
    }
}
