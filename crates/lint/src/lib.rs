#![warn(missing_docs)]

//! # rfh-lint — dataflow-driven static analyzer for RFH kernels
//!
//! A multi-pass linter over `rfh-isa` kernels, driven by the dataflow
//! infrastructure in `rfh-analysis` (CFG, dominators, liveness, def-use,
//! strands). Each finding carries a stable code (`RFH-L0xx`), a fixed
//! severity, and a block/instruction span:
//!
//! | code | severity | check |
//! |------|----------|-------|
//! | RFH-L001 | error | may-use-before-def on some CFG path (predication-aware) |
//! | RFH-L002 | warning | unreachable basic block |
//! | RFH-L003 | warning | definition whose result is never read |
//! | RFH-L004 | error | barrier reachable under divergent control flow |
//! | RFH-L005 | warning | statically detectable shared-memory race |
//! | RFH-L006 | error | LRF placement contract violation |
//! | RFH-L007 | error | ORF/MRF placement inconsistency (incl. stale MRF reads) |
//! | RFH-L008 | warning | upper-level pressure predicting MRF spills |
//!
//! `docs/LINTS.md` documents every code with a triggering example. The
//! entry point is [`lint_kernel`]; `rfhc lint` wires it to the command
//! line, and the chaos harness (`rfh-chaos`) uses it as the flagging
//! oracle of its differential soundness layer: every IR-mutated kernel
//! must either be flagged with an error here or execute and validate
//! cleanly.
//!
//! Linting never mutates the kernel and never panics on a kernel that
//! passed [`rfh_isa::validate`].

use rfh_analysis::DomTree;
use rfh_isa::Kernel;

mod barrier;
mod dead;
pub mod diag;
mod place;
mod pressure;
mod race;
pub mod render;
mod undef;

pub use diag::{has_errors, Code, Diagnostic, Severity};
pub use render::{human_line, json_line};

use rfh_alloc::AllocConfig;

/// Options controlling a lint run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintOptions {
    /// The hierarchy shape placement annotations are checked against
    /// (RFH-L006/RFH-L007) and pressure is measured against (RFH-L008).
    /// Must match the configuration the kernel was allocated with;
    /// unallocated kernels (all-MRF annotations) pass the placement checks
    /// under any configuration.
    pub alloc: AllocConfig,
}

impl Default for LintOptions {
    /// The paper's most efficient configuration (3 ORF entries, split
    /// LRF), matching [`AllocConfig::default`].
    fn default() -> Self {
        LintOptions {
            alloc: AllocConfig::default(),
        }
    }
}

/// Lints a kernel, returning all findings sorted by program order (block,
/// then instruction, then code).
///
/// The kernel must have passed [`rfh_isa::validate`]; structural
/// invariants (terminator placement, branch targets, operand counts) are
/// the validator's business, and the analyses here assume them.
pub fn lint_kernel(kernel: &Kernel, options: &LintOptions) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let dom = DomTree::dominators(kernel);
    undef::check(kernel, &dom, &mut diags);
    dead::check(kernel, &dom, &mut diags);
    barrier::check(kernel, &dom, &mut diags);
    race::check(kernel, &dom, &mut diags);
    place::check(kernel, &options.alloc, &mut diags);
    pressure::check(kernel, &options.alloc, &mut diags);
    diags.sort_by_key(|a| a.sort_key());
    diags.dedup();
    diags
}
