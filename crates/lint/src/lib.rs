#![warn(missing_docs)]

//! # rfh-lint — dataflow-driven static analyzer for RFH kernels
//!
//! A multi-pass linter over `rfh-isa` kernels, driven by the dataflow
//! infrastructure in `rfh-analysis` (CFG, dominators, liveness, def-use,
//! strands). Each finding carries a stable code (`RFH-L0xx`), a fixed
//! severity, and a block/instruction span:
//!
//! | code | severity | check |
//! |------|----------|-------|
//! | RFH-L001 | error | may-use-before-def on some CFG path (predication-aware) |
//! | RFH-L002 | warning | unreachable basic block |
//! | RFH-L003 | warning | definition whose result is never read |
//! | RFH-L004 | error | barrier reachable under divergent control flow |
//! | RFH-L005 | warning | statically detectable shared-memory race |
//! | RFH-L006 | error | LRF placement contract violation |
//! | RFH-L007 | error | ORF/MRF placement inconsistency (incl. stale MRF reads) |
//! | RFH-L008 | warning | upper-level pressure predicting MRF spills |
//! | RFH-L009 | error | provably out-of-bounds shared-memory access |
//! | RFH-L010 | warning | provably uniform branch under a thread-dependent predicate |
//! | RFH-L011 | note | constant-foldable ALU operation |
//!
//! RFH-L009 through RFH-L011 (and the interval sharpening of RFH-L005 and
//! dead-edge pruning of RFH-L008) are powered by one run of the abstract
//! interpreter in `rfh_analysis::absint` — interval value ranges, tid-affine
//! forms, and warp-uniformity over the kernel CFG. RFH-L005 additionally
//! emits note-severity findings for shared-memory indices the affine
//! resolver cannot verify.
//!
//! `docs/LINTS.md` documents every code with a triggering example. The
//! entry point is [`lint_kernel`]; `rfhc lint` wires it to the command
//! line, and the chaos harness (`rfh-chaos`) uses it as the flagging
//! oracle of its differential soundness layer: every IR-mutated kernel
//! must either be flagged with an error here or execute and validate
//! cleanly.
//!
//! Linting never mutates the kernel and never panics on a kernel that
//! passed [`rfh_isa::validate`].

use rfh_analysis::absint::{self, AbsCtx};
use rfh_analysis::strand::mark_strands;
use rfh_analysis::DomTree;
use rfh_isa::Kernel;

mod barrier;
mod dead;
pub mod diag;
mod place;
mod pressure;
mod race;
pub mod render;
mod undef;
mod value;

pub use diag::{has_errors, Code, Diagnostic, Severity};
pub use render::{human_line, json_line};

use rfh_alloc::AllocConfig;

/// Options controlling a lint run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintOptions {
    /// The hierarchy shape placement annotations are checked against
    /// (RFH-L006/RFH-L007) and pressure is measured against (RFH-L008).
    /// Must match the configuration the kernel was allocated with;
    /// unallocated kernels (all-MRF annotations) pass the placement checks
    /// under any configuration.
    pub alloc: AllocConfig,
    /// The shared-memory size, in 32-bit words, that RFH-L009 bounds-checks
    /// proven address intervals against.
    pub shared_words: usize,
}

impl Default for LintOptions {
    /// The paper's most efficient configuration (3 ORF entries, split
    /// LRF), matching [`AllocConfig::default`], and the simulator's default
    /// 8192-word (32 KiB) shared memory.
    fn default() -> Self {
        LintOptions {
            alloc: AllocConfig::default(),
            shared_words: 8192,
        }
    }
}

/// Lints a kernel, returning all findings sorted by program order (block,
/// then instruction, then code).
///
/// The kernel must have passed [`rfh_isa::validate`]; structural
/// invariants (terminator placement, branch targets, operand counts) are
/// the validator's business, and the analyses here assume them.
pub fn lint_kernel(kernel: &Kernel, options: &LintOptions) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let dom = DomTree::dominators(kernel);
    // One abstract-interpretation run feeds the L005 sharpening, the L008
    // dead-strand pruning, and the L009–L011 checks. Strand marking
    // mutates `ends_strand` bits, so it runs on a clone; instruction
    // positions are unchanged, so the facts map back to `kernel`.
    let mut marked = kernel.clone();
    let info = mark_strands(&mut marked);
    let absres = absint::analyze(&marked, AbsCtx::default());
    undef::check(kernel, &dom, &mut diags);
    dead::check(kernel, &dom, &mut diags);
    barrier::check(kernel, &dom, &mut diags);
    race::check(kernel, &dom, &absres, &mut diags);
    place::check(kernel, &options.alloc, &mut diags);
    pressure::check(&marked, &info, &options.alloc, &absres, &mut diags);
    value::check(kernel, &absres, options.shared_words, &mut diags);
    diags.sort_by_key(|a| a.sort_key());
    diags.dedup();
    diags
}
