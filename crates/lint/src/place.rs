//! RFH-L006 / RFH-L007 — strand/placement consistency for allocated
//! kernels: the *static* counterpart of `rfh_alloc::validate_placements`.
//!
//! The dynamic replay validator stops at the first inconsistency; this
//! check walks the same per-strand symbolic state (ORF entries and LRF
//! banks as `Option<Reg>`, met by intersection across paths) but recovers
//! after each finding and keeps going, attributing every violation to its
//! instruction:
//!
//! * RFH-L006 — LRF contract violations: shared-datapath reads/writes,
//!   bank/slot mismatches under the split LRF, 64-bit values, accesses
//!   with no LRF configured, and a bank holding a different value;
//! * RFH-L007 — ORF/MRF consistency: entries out of range or holding a
//!   different register than annotated, upper-level writes with no
//!   destination, and MRF reads that may observe a stale copy (a path
//!   whose latest definition skipped the MRF write).
//!
//! Strand boundaries come from the `ends_strand` bits already on the
//! instructions; an unallocated kernel (all placements MRF) passes
//! trivially.

use std::collections::HashMap;

use rfh_alloc::{AllocConfig, LrfMode};
use rfh_analysis::RegSet;
use rfh_isa::access::{AccessKind, AccessPlan, AccessSlot, Datapath, Place};
use rfh_isa::{InstrRef, Kernel, Reg, Width};

use crate::diag::{Code, Diagnostic};

#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    orf: Vec<Option<Reg>>,
    lrf: Vec<Option<Reg>>,
}

impl State {
    fn empty(config: &AllocConfig) -> State {
        let banks = match config.lrf {
            LrfMode::None => 0,
            LrfMode::Unified => 1,
            LrfMode::Split => 3,
        };
        State {
            orf: vec![None; config.orf_entries],
            lrf: vec![None; banks],
        }
    }

    fn meet(&mut self, other: &State) {
        for (a, b) in self.orf.iter_mut().zip(&other.orf) {
            if *a != *b {
                *a = None;
            }
        }
        for (a, b) in self.lrf.iter_mut().zip(&other.lrf) {
            if *a != *b {
                *a = None;
            }
        }
    }
}

/// Splits the kernel into strands on the existing `ends_strand` bits.
fn segments(kernel: &Kernel) -> Vec<Vec<InstrRef>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for (at, i) in kernel.iter_instrs() {
        cur.push(at);
        if i.ends_strand {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// MRF freshness: flags every MRF read that may observe a register whose
/// latest definition on some path skipped the MRF write.
fn check_mrf_freshness(kernel: &Kernel, diags: &mut Vec<Diagnostic>) {
    let n = kernel.blocks.len();
    let num_regs = kernel.num_regs();
    let mut stale_in = vec![RegSet::new(num_regs); n];
    let preds = kernel.predecessors();

    let transfer =
        |stale: &mut RegSet, b: &rfh_isa::BasicBlock, diags: Option<&mut Vec<Diagnostic>>| {
            let mut diags = diags;
            let mut plan = AccessPlan::new();
            for (idx, i) in b.instrs.iter().enumerate() {
                plan.resolve_into(i);
                if let Some(out) = diags.as_deref_mut() {
                    for a in plan.reads() {
                        if a.place == Place::Mrf && stale.contains(a.reg) {
                            out.push(Diagnostic::at(
                                Code::OrfConflict,
                                InstrRef {
                                    block: b.id,
                                    index: idx,
                                },
                                format!(
                                    "MRF read of {} may observe a stale copy — an earlier \
                                     definition skipped the MRF write (`{i}`)",
                                    a.reg
                                ),
                            ));
                        }
                    }
                }
                let writes_mrf = plan.writes_mrf();
                for r in plan.written_words() {
                    if writes_mrf {
                        if i.guard.is_none() {
                            stale.remove(*r);
                        }
                    } else {
                        stale.insert(*r);
                    }
                }
            }
        };

    let mut changed = true;
    while changed {
        changed = false;
        for b in &kernel.blocks {
            let mut inn = RegSet::new(num_regs);
            for p in &preds[b.id.index()] {
                let mut out = stale_in[p.index()].clone();
                transfer(&mut out, kernel.block(*p), None);
                inn.union_with(&out);
            }
            if inn != stale_in[b.id.index()] {
                stale_in[b.id.index()] = inn;
                changed = true;
            }
        }
    }
    for b in &kernel.blocks {
        let mut stale = stale_in[b.id.index()].clone();
        transfer(&mut stale, b, Some(diags));
    }
}

/// Runs the check, appending RFH-L006/RFH-L007 findings to `diags`.
pub(crate) fn check(kernel: &Kernel, config: &AllocConfig, diags: &mut Vec<Diagnostic>) {
    check_mrf_freshness(kernel, diags);
    let preds = kernel.predecessors();
    for strand in segments(kernel) {
        let pos_of: HashMap<InstrRef, usize> =
            strand.iter().enumerate().map(|(i, r)| (*r, i)).collect();
        let mut out_states: Vec<State> = Vec::with_capacity(strand.len());

        for (pos, at) in strand.iter().enumerate() {
            let instr = kernel.instr(*at);
            let plan = AccessPlan::resolve(instr);

            // ---- in-state ----
            let mut state: Option<State> = None;
            let meet_in = |state: &mut Option<State>, s: &State| match state {
                None => *state = Some(s.clone()),
                Some(cur) => cur.meet(s),
            };
            let mut external = false;
            if at.index > 0 {
                let prev = InstrRef {
                    block: at.block,
                    index: at.index - 1,
                };
                match pos_of.get(&prev) {
                    Some(p) => meet_in(&mut state, &out_states[*p]),
                    None => external = true,
                }
            } else {
                for p in &preds[at.block.index()] {
                    let pb = kernel.block(*p);
                    let term = InstrRef {
                        block: *p,
                        index: pb.instrs.len() - 1,
                    };
                    match pos_of.get(&term) {
                        // Later positions are the strand's own closing
                        // backedge: inter-strand, upper levels invalid.
                        Some(t) if *t < pos => meet_in(&mut state, &out_states[*t]),
                        _ => external = true,
                    }
                }
            }
            let mut state = match (state, external) {
                (Some(s), false) => s,
                (Some(mut s), true) => {
                    s.meet(&State::empty(config));
                    s
                }
                (None, _) => State::empty(config),
            };

            // ---- reads ----
            let mut fills: Vec<(usize, Reg)> = Vec::new();
            for a in plan
                .accesses()
                .iter()
                .filter(|a| a.kind != AccessKind::Write)
            {
                let reg = a.reg;
                match (a.kind, a.place) {
                    (AccessKind::Fill, Place::Orf(e)) => {
                        let e = e as usize;
                        if e >= config.orf_entries {
                            diags.push(Diagnostic::at(
                                Code::OrfConflict,
                                *at,
                                format!("fill entry ORF{e} out of range (`{instr}`)"),
                            ));
                        } else {
                            fills.push((e, reg));
                        }
                    }
                    (_, Place::Mrf) | (AccessKind::Fill, _) => {}
                    (_, Place::Orf(e)) => {
                        let e = e as usize;
                        if e >= config.orf_entries {
                            diags.push(Diagnostic::at(
                                Code::OrfConflict,
                                *at,
                                format!("read entry ORF{e} out of range (`{instr}`)"),
                            ));
                        } else if state.orf[e] != Some(reg) {
                            diags.push(Diagnostic::at(
                                Code::OrfConflict,
                                *at,
                                format!(
                                    "ORF{e} holds {} but the read expects {reg} (`{instr}`)",
                                    describe(state.orf[e])
                                ),
                            ));
                        }
                    }
                    (_, Place::Lrf(bank)) => {
                        if !config.lrf.enabled() {
                            diags.push(Diagnostic::at(
                                Code::LrfMisuse,
                                *at,
                                format!("LRF read but no LRF configured (`{instr}`)"),
                            ));
                            continue;
                        }
                        if a.datapath == Datapath::Shared {
                            diags.push(Diagnostic::at(
                                Code::LrfMisuse,
                                *at,
                                format!("the shared datapath cannot read the LRF (`{instr}`)"),
                            ));
                            continue;
                        }
                        let AccessSlot::Src(i) = a.slot else { continue };
                        let i = i as usize;
                        let b = match (config.lrf, bank) {
                            (LrfMode::Unified, None) => 0,
                            (LrfMode::Split, Some(s)) => {
                                if s.index() != i {
                                    diags.push(Diagnostic::at(
                                        Code::LrfMisuse,
                                        *at,
                                        format!(
                                            "split LRF read from bank {s} in operand slot {i} \
                                             (`{instr}`)"
                                        ),
                                    ));
                                    continue;
                                }
                                s.index()
                            }
                            _ => {
                                diags.push(Diagnostic::at(
                                    Code::LrfMisuse,
                                    *at,
                                    format!(
                                        "LRF bank annotation does not match {} mode (`{instr}`)",
                                        config.lrf
                                    ),
                                ));
                                continue;
                            }
                        };
                        if state.lrf[b] != Some(reg) {
                            diags.push(Diagnostic::at(
                                Code::LrfMisuse,
                                *at,
                                format!(
                                    "LRF bank {b} holds {} but the read expects {reg} (`{instr}`)",
                                    describe(state.lrf[b])
                                ),
                            ));
                        }
                    }
                }
            }
            for (e, reg) in fills {
                state.orf[e] = Some(reg);
            }

            // ---- defs ----
            if !plan.written_words().is_empty() {
                let orf_base = plan
                    .writes()
                    .find_map(|a| a.place.orf_entry().map(|e| e as usize));
                let words = plan.written_words().len();
                let target_lrf: Option<usize> =
                    plan.writes().find_map(|a| match (config.lrf, a.place) {
                        (LrfMode::Unified, Place::Lrf(None)) => Some(0),
                        (LrfMode::Split, Place::Lrf(Some(s))) => Some(s.index()),
                        _ => None,
                    });
                for r in plan.written_words() {
                    for (e, slot) in state.orf.iter_mut().enumerate() {
                        let targeted = orf_base.is_some_and(|base| e >= base && e < base + words);
                        if !targeted && *slot == Some(*r) {
                            *slot = None;
                        }
                    }
                    for (b, slot) in state.lrf.iter_mut().enumerate() {
                        if target_lrf != Some(b) && *slot == Some(*r) {
                            *slot = None;
                        }
                    }
                }
                let guarded = instr.guard.is_some();
                let write = |slot: &mut Option<Reg>, reg: Reg| {
                    if guarded {
                        if *slot != Some(reg) {
                            *slot = None;
                        }
                    } else {
                        *slot = Some(reg);
                    }
                };
                if let Some(e) = orf_base {
                    let slots = words;
                    if e + slots > config.orf_entries {
                        diags.push(Diagnostic::at(
                            Code::OrfConflict,
                            *at,
                            format!("write entry ORF{e} (+{slots} wide) out of range (`{instr}`)"),
                        ));
                    } else {
                        for a in plan.writes() {
                            if let Place::Orf(entry) = a.place {
                                write(&mut state.orf[entry as usize], a.reg);
                            }
                        }
                    }
                }
                for a in plan.writes() {
                    let Place::Lrf(bank) = a.place else { continue };
                    // Per-value checks run once, on the low word's access.
                    if a.slot != AccessSlot::DstWord(0) {
                        continue;
                    }
                    let mut ok = true;
                    if !config.lrf.enabled() {
                        diags.push(Diagnostic::at(
                            Code::LrfMisuse,
                            *at,
                            format!("LRF write but no LRF configured (`{instr}`)"),
                        ));
                        ok = false;
                    }
                    if a.datapath == Datapath::Shared {
                        diags.push(Diagnostic::at(
                            Code::LrfMisuse,
                            *at,
                            format!("the shared datapath cannot write the LRF (`{instr}`)"),
                        ));
                        ok = false;
                    }
                    if a.width == Width::W64 {
                        diags.push(Diagnostic::at(
                            Code::LrfMisuse,
                            *at,
                            format!("64-bit values cannot live in the LRF (`{instr}`)"),
                        ));
                        ok = false;
                    }
                    if ok {
                        match (config.lrf, bank) {
                            (LrfMode::Unified, None) => write(&mut state.lrf[0], a.reg),
                            (LrfMode::Split, Some(s)) => write(&mut state.lrf[s.index()], a.reg),
                            _ => diags.push(Diagnostic::at(
                                Code::LrfMisuse,
                                *at,
                                format!(
                                    "LRF bank annotation does not match {} mode (`{instr}`)",
                                    config.lrf
                                ),
                            )),
                        }
                    }
                }
            } else if plan.orphan_upper_write() {
                diags.push(Diagnostic::at(
                    Code::OrfConflict,
                    *at,
                    format!(
                        "upper-level write annotation on an instruction with no destination \
                         (`{instr}`)"
                    ),
                ));
            }

            out_states.push(state);
        }
    }
}

fn describe(slot: Option<Reg>) -> String {
    match slot {
        Some(r) => format!("{r}"),
        None => "no known value".to_string(),
    }
}
