//! The diagnostic model: stable codes, severities, and spans.

use std::fmt;

use rfh_isa::{BlockId, InstrRef};

/// How bad a finding is.
///
/// Errors are soundness-relevant: the kernel may compute wrong results,
/// deadlock, or carry inconsistent placement annotations. Warnings are
/// conservative or advisory: the analysis cannot prove the construct safe
/// (races, pressure) or the code is merely wasteful (dead defs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory or conservative finding; `rfhc lint` still exits 0.
    Warning,
    /// Definite defect; `rfhc lint` exits with the lint error code.
    Error,
}

impl Severity {
    /// Lower-case name, as rendered in human and JSON output.
    pub const fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes. Each code belongs to exactly one check and
/// keeps its meaning across releases; `docs/LINTS.md` documents every code
/// with a triggering example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// RFH-L001 — a register may be read before any definition reaches the
    /// read on some CFG path (predication-aware).
    UseBeforeDef,
    /// RFH-L002 — a basic block is unreachable from the kernel entry.
    UnreachableBlock,
    /// RFH-L003 — a definition whose result is never read.
    DeadDef,
    /// RFH-L004 — a barrier may execute under divergent control flow.
    BarrierDivergence,
    /// RFH-L005 — two shared-memory accesses may race between threads with
    /// no intervening barrier (conservative, thread-index-offset based).
    SharedRace,
    /// RFH-L006 — an LRF placement annotation violates the LRF contract
    /// (shared-datapath access, bank/slot mismatch, width, configuration).
    LrfMisuse,
    /// RFH-L007 — an ORF/MRF placement annotation is inconsistent: entry
    /// out of range or holding a different value than annotated, an
    /// upper-level write without a destination, or a stale MRF read.
    OrfConflict,
    /// RFH-L008 — a strand's candidate-value demand exceeds the configured
    /// ORF/LRF capacity; the allocator will keep values in the MRF.
    Pressure,
}

impl Code {
    /// The stable code string, e.g. `RFH-L001`.
    pub const fn as_str(self) -> &'static str {
        match self {
            Code::UseBeforeDef => "RFH-L001",
            Code::UnreachableBlock => "RFH-L002",
            Code::DeadDef => "RFH-L003",
            Code::BarrierDivergence => "RFH-L004",
            Code::SharedRace => "RFH-L005",
            Code::LrfMisuse => "RFH-L006",
            Code::OrfConflict => "RFH-L007",
            Code::Pressure => "RFH-L008",
        }
    }

    /// The fixed severity of this code.
    pub const fn severity(self) -> Severity {
        match self {
            Code::UseBeforeDef | Code::BarrierDivergence | Code::LrfMisuse | Code::OrfConflict => {
                Severity::Error
            }
            Code::UnreachableBlock | Code::DeadDef | Code::SharedRace | Code::Pressure => {
                Severity::Warning
            }
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a code, a span (block, optionally an instruction index
/// within it), and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable diagnostic code (which fixes the severity).
    pub code: Code,
    /// The block the finding is anchored to.
    pub block: BlockId,
    /// The instruction index within `block`, or `None` for block-level
    /// findings (e.g. an unreachable block).
    pub instr: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// A finding anchored to one instruction.
    pub fn at(code: Code, at: InstrRef, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            block: at.block,
            instr: Some(at.index),
            message: message.into(),
        }
    }

    /// A block-level finding.
    pub fn at_block(code: Code, block: BlockId, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            block,
            instr: None,
            message: message.into(),
        }
    }

    /// The fixed severity of this finding's code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Deterministic ordering key: program order first (block, then
    /// block-level findings before instruction findings), then code.
    pub(crate) fn sort_key(&self) -> (u32, usize, Code, String) {
        (
            self.block.index() as u32,
            self.instr.map_or(0, |i| i + 1),
            self.code,
            self.message.clone(),
        )
    }
}

/// Whether any finding in `diags` is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity() == Severity::Error)
}
