//! The diagnostic model: stable codes, severities, and spans.

use std::fmt;

use rfh_isa::{BlockId, InstrRef};

/// How bad a finding is.
///
/// Errors are soundness-relevant: the kernel may compute wrong results,
/// deadlock, or carry inconsistent placement annotations. Warnings are
/// conservative or advisory: the analysis cannot prove the construct safe
/// (races, pressure) or the code is merely wasteful (dead defs). Notes
/// record what an analysis *could not* conclude (an unverifiable index) or
/// a pure efficiency observation (a foldable constant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational finding; never affects the exit status on its own.
    Note,
    /// Advisory or conservative finding; `rfhc lint` still exits 0.
    Warning,
    /// Definite defect; `rfhc lint` exits with the lint error code.
    Error,
}

impl Severity {
    /// Lower-case name, as rendered in human and JSON output.
    pub const fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes. Each code belongs to exactly one check and
/// keeps its meaning across releases; `docs/LINTS.md` documents every code
/// with a triggering example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// RFH-L001 — a register may be read before any definition reaches the
    /// read on some CFG path (predication-aware).
    UseBeforeDef,
    /// RFH-L002 — a basic block is unreachable from the kernel entry.
    UnreachableBlock,
    /// RFH-L003 — a definition whose result is never read.
    DeadDef,
    /// RFH-L004 — a barrier may execute under divergent control flow.
    BarrierDivergence,
    /// RFH-L005 — two shared-memory accesses may race between threads with
    /// no intervening barrier (conservative, thread-index-offset based).
    SharedRace,
    /// RFH-L006 — an LRF placement annotation violates the LRF contract
    /// (shared-datapath access, bank/slot mismatch, width, configuration).
    LrfMisuse,
    /// RFH-L007 — an ORF/MRF placement annotation is inconsistent: entry
    /// out of range or holding a different value than annotated, an
    /// upper-level write without a destination, or a stale MRF read.
    OrfConflict,
    /// RFH-L008 — a strand's candidate-value demand exceeds the configured
    /// ORF/LRF capacity; the allocator will keep values in the MRF.
    Pressure,
    /// RFH-L009 — a shared-memory access whose address interval, as proved
    /// by abstract interpretation, lies entirely outside the declared
    /// shared-memory size: every executing lane faults.
    SharedOob,
    /// RFH-L010 — a branch guarded by a thread-dependent predicate that
    /// abstract interpretation proves warp-uniform: the divergence
    /// machinery (reconvergence token, mask split) is provably unused.
    UniformBranch,
    /// RFH-L011 — an ALU instruction whose result is a proven compile-time
    /// constant: the operation could be folded to an immediate `mov`.
    ConstFold,
}

impl Code {
    /// The stable code string, e.g. `RFH-L001`.
    pub const fn as_str(self) -> &'static str {
        match self {
            Code::UseBeforeDef => "RFH-L001",
            Code::UnreachableBlock => "RFH-L002",
            Code::DeadDef => "RFH-L003",
            Code::BarrierDivergence => "RFH-L004",
            Code::SharedRace => "RFH-L005",
            Code::LrfMisuse => "RFH-L006",
            Code::OrfConflict => "RFH-L007",
            Code::Pressure => "RFH-L008",
            Code::SharedOob => "RFH-L009",
            Code::UniformBranch => "RFH-L010",
            Code::ConstFold => "RFH-L011",
        }
    }

    /// The default severity of this code. Individual findings may lower it
    /// (e.g. RFH-L005 "unverifiable index" notes); see
    /// [`Diagnostic::severity`].
    pub const fn severity(self) -> Severity {
        match self {
            Code::UseBeforeDef
            | Code::BarrierDivergence
            | Code::LrfMisuse
            | Code::OrfConflict
            | Code::SharedOob => Severity::Error,
            Code::UnreachableBlock
            | Code::DeadDef
            | Code::SharedRace
            | Code::Pressure
            | Code::UniformBranch => Severity::Warning,
            Code::ConstFold => Severity::Note,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a code, a span (block, optionally an instruction index
/// within it), a severity, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable diagnostic code.
    pub code: Code,
    /// The severity of this particular finding. Defaults to
    /// [`Code::severity`]; a check may lower it to [`Severity::Note`] for
    /// informational variants of a code.
    pub severity: Severity,
    /// The block the finding is anchored to.
    pub block: BlockId,
    /// The instruction index within `block`, or `None` for block-level
    /// findings (e.g. an unreachable block).
    pub instr: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// A finding anchored to one instruction.
    pub fn at(code: Code, at: InstrRef, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            block: at.block,
            instr: Some(at.index),
            message: message.into(),
        }
    }

    /// A note-severity finding anchored to one instruction (used for
    /// informational variants of a code, e.g. RFH-L005 "unverifiable
    /// index").
    pub fn note_at(code: Code, at: InstrRef, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Note,
            ..Diagnostic::at(code, at, message)
        }
    }

    /// A block-level finding.
    pub fn at_block(code: Code, block: BlockId, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            block,
            instr: None,
            message: message.into(),
        }
    }

    /// The severity of this finding.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// Deterministic ordering key: program order first (block, then
    /// block-level findings before instruction findings), then code.
    pub(crate) fn sort_key(&self) -> (u32, usize, Code, String) {
        (
            self.block.index() as u32,
            self.instr.map_or(0, |i| i + 1),
            self.code,
            self.message.clone(),
        )
    }
}

/// Whether any finding in `diags` is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity() == Severity::Error)
}
