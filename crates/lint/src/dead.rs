//! RFH-L002 (unreachable blocks) and RFH-L003 (dead definitions).
//!
//! Unreachable blocks come straight from the dominator tree (a block
//! without an idom chain to the entry was never reached by the DFS). Dead
//! definitions are instructions that write a general-purpose destination
//! no subsequent instruction can read, per the block-level liveness
//! analysis — the same analysis whose `dead_after` bits the hardware RFC
//! uses to elide writebacks, so a dead *definition* is one whose entire
//! result is elided.

use rfh_analysis::{DomTree, Liveness};
use rfh_isa::Kernel;

use crate::diag::{Code, Diagnostic};

/// Runs both checks, appending findings to `diags`.
pub(crate) fn check(kernel: &Kernel, dom: &DomTree, diags: &mut Vec<Diagnostic>) {
    for block in &kernel.blocks {
        if !dom.is_reachable(block.id) {
            diags.push(Diagnostic::at_block(
                Code::UnreachableBlock,
                block.id,
                format!("{} is unreachable from the kernel entry", block.id),
            ));
        }
    }

    let liveness = Liveness::compute(kernel);
    for (at, instr) in kernel.iter_instrs() {
        if !dom.is_reachable(at.block) {
            continue; // dead because unreachable: RFH-L002 already says so
        }
        let Some(dst) = instr.dst else {
            continue;
        };
        let live = liveness.live_after(kernel, at);
        if dst.regs().all(|r| !live.contains(r)) {
            diags.push(Diagnostic::at(
                Code::DeadDef,
                at,
                format!("definition of {} is never read (`{instr}`)", dst.reg),
            ));
        }
    }
}
