//! Abstract-interpretation-driven checks: RFH-L009 (provably
//! out-of-bounds shared access), RFH-L010 (provably uniform branch under
//! a thread-dependent predicate), RFH-L011 (constant-foldable ALU op).
//!
//! All three spend facts from one [`rfh_analysis::absint::analyze`] run
//! (shared with the L005 race sharpening and L008 pressure pruning):
//!
//! * **L009** fires when a shared-memory load/store address interval lies
//!   entirely outside `[0, shared_words)` — every executing lane faults,
//!   so it is an error, and soundness of the interval domain makes it
//!   free of false positives (modulo a wrong `shared_words`).
//! * **L010** fires when the coarse flow-insensitive taint analysis (the
//!   one RFH-L004 uses) calls a branch guard thread-dependent but the
//!   abstract interpreter proves it never splits the warp — e.g. a
//!   predicate computed from `tid & ~31`. The divergence machinery the
//!   hardware reserves for the branch is provably unused.
//! * **L011** fires when a reachable ALU instruction's destination claim
//!   is a singleton: the operation always computes the same bit pattern
//!   and could be folded to an immediate `mov`. `mov`/`sel` and memory
//!   ops are exempt (a constant `mov` *is* the folded form; `sel` is
//!   data movement, not arithmetic).

use rfh_analysis::absint::AbsResults;
use rfh_isa::{Kernel, Opcode, Space};

use crate::barrier::uniformity;
use crate::diag::{Code, Diagnostic};

/// Whether this opcode is a default-datapath ALU operation for RFH-L011
/// purposes (excludes data movement, memory, control, and predicates).
fn is_foldable_alu(op: Opcode) -> bool {
    !matches!(
        op,
        Opcode::Mov
            | Opcode::Sel
            | Opcode::Ld(_)
            | Opcode::St(_)
            | Opcode::Tex
            | Opcode::Bra
            | Opcode::Exit
            | Opcode::Bar
            | Opcode::Setp(_)
            | Opcode::FSetp(_)
    )
}

/// Runs the three checks, appending findings to `diags`.
pub(crate) fn check(
    kernel: &Kernel,
    res: &AbsResults,
    shared_words: usize,
    diags: &mut Vec<Diagnostic>,
) {
    let taint = uniformity(kernel);
    for (at, instr) in kernel.iter_instrs() {
        let f = res.fact(at);
        if !f.reachable {
            continue;
        }

        // RFH-L009: the whole address interval misses the shared array.
        if let Opcode::Ld(Space::Shared) | Opcode::St(Space::Shared) = instr.op {
            let a = f.srcs[0];
            if (a.hi as i64) < 0 || (a.lo as i64) >= shared_words as i64 {
                let what = if matches!(instr.op, Opcode::St(_)) {
                    "store"
                } else {
                    "load"
                };
                diags.push(Diagnostic::at(
                    Code::SharedOob,
                    at,
                    format!(
                        "shared-memory {what} `{instr}` is provably out of bounds: every \
                         executing lane computes a word index in [{}, {}], entirely outside \
                         the {shared_words} declared shared words",
                        a.lo, a.hi
                    ),
                ));
            }
        }

        // RFH-L010: the taint analysis calls the guard thread-dependent,
        // but the abstract interpreter proves the branch never splits the
        // warp.
        if instr.op.is_branch() {
            if let (Some(g), Some(ga)) = (&instr.guard, f.guard) {
                let succs = kernel.successors(at.block);
                if succs.len() == 2
                    && succs[0] != succs[1]
                    && ga.never_diverges()
                    && taint.non_uniform_guard(g)
                {
                    let bang = if g.negated { "!" } else { "" };
                    diags.push(Diagnostic::at(
                        Code::UniformBranch,
                        at,
                        format!(
                            "branch guard @{bang}{} is computed from thread-dependent \
                             inputs but is provably warp-uniform: the branch never \
                             diverges, so its reconvergence bookkeeping is dead weight",
                            g.reg
                        ),
                    ));
                }
            }
        }

        // RFH-L011: a proven-constant ALU result.
        if is_foldable_alu(instr.op) {
            if let Some(c) = f.dst.as_ref().and_then(|d| d.as_const()) {
                diags.push(Diagnostic::note_at(
                    Code::ConstFold,
                    at,
                    format!(
                        "`{instr}` always computes {c:#x}: the operation folds to an \
                         immediate mov"
                    ),
                ));
            }
        }
    }
}
