//! RFH-L001 — may-use-before-def along any CFG path, predication-aware.
//!
//! A forward dataflow over per-register initialization states:
//!
//! * `Def` — defined on every path reaching this point;
//! * `Guarded(p, neg)` — defined at least when the guard `@p` / `@!p`
//!   passes (the defining write was predicated, and `p` has not been
//!   redefined since);
//! * `Maybe` — possibly undefined on some path.
//!
//! A read of a `Maybe` register is flagged; a read of a `Guarded` register
//! is accepted only under the *same* guard (same predicate, same
//! polarity), which is how correctly predicated code defines-then-uses a
//! value without the definition being unconditional.
//!
//! The analysis is edge-sensitive around conditional branches: on the
//! taken edge of `@p bra`, `p` is known true (and on the fallthrough edge
//! false), so a value defined on only one side of a hammock meets to
//! `Guarded` rather than `Maybe` at the join, and a `Guarded` value is
//! upgraded to `Def` on the edge that proves its guard passed.
//!
//! The executor zero-initializes registers, so an undefined read executes
//! "cleanly" — this check is deliberately stricter than execution: reading
//! an undefined register is a program defect even when it cannot crash.

use rfh_analysis::DomTree;
use rfh_isa::{BasicBlock, BlockId, InstrRef, Kernel, PredReg};

use crate::diag::{Code, Diagnostic};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegInit {
    Def,
    Guarded(PredReg, bool),
    Maybe,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PredInit {
    Def,
    Maybe,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    regs: Vec<RegInit>,
    preds: Vec<PredInit>,
}

impl State {
    fn bottom(num_regs: usize, num_preds: usize) -> State {
        State {
            regs: vec![RegInit::Maybe; num_regs],
            preds: vec![PredInit::Maybe; num_preds],
        }
    }

    fn meet(&mut self, other: &State) {
        for (a, &b) in self.regs.iter_mut().zip(&other.regs) {
            *a = match (*a, b) {
                (x, y) if x == y => x,
                (RegInit::Def, g @ RegInit::Guarded(..))
                | (g @ RegInit::Guarded(..), RegInit::Def) => g,
                _ => RegInit::Maybe,
            };
        }
        for (a, &b) in self.preds.iter_mut().zip(&other.preds) {
            if *a != b {
                *a = PredInit::Maybe;
            }
        }
    }
}

/// A per-edge predicate fact: along this edge, `0`'s value is `1`.
type Fact = (PredReg, bool);

/// The predicate fact carried by the edge `from -> to`, if any: the taken
/// edge of a guarded branch asserts the guard passed, the fallthrough edge
/// (and the fallthrough of a guarded exit) asserts it failed.
fn edge_fact(kernel: &Kernel, from: BlockId, to: BlockId) -> Option<Fact> {
    let block = kernel.block(from);
    let term = block.instrs.last()?;
    let guard = term.guard.as_ref()?;
    let fall = {
        let next = from.index() + 1;
        (next < kernel.blocks.len()).then(|| BlockId::new(next as u32))
    };
    if term.op.is_branch() {
        let taken = term.target == Some(to);
        let fell = fall == Some(to);
        match (taken, fell) {
            // Taken: the guard passed, so the predicate equals !negated.
            (true, false) => Some((guard.reg, !guard.negated)),
            // Fallthrough: the guard failed.
            (false, true) => Some((guard.reg, guard.negated)),
            // Branch to the fallthrough block: no information.
            _ => None,
        }
    } else if term.op.is_exit() {
        // Threads continuing past a guarded exit failed its guard.
        Some((guard.reg, guard.negated))
    } else {
        None
    }
}

fn apply_fact(state: &mut State, (pred, value): Fact) {
    // The branch read the predicate; an undefined guard was flagged there.
    if let Some(p) = state.preds.get_mut(pred.index() as usize) {
        *p = PredInit::Def;
    }
    for r in state.regs.iter_mut() {
        if let RegInit::Guarded(g, negated) = *r {
            if g == pred {
                // The guarded definition executed iff its guard passed,
                // i.e. iff the predicate was !negated.
                *r = if value != negated {
                    RegInit::Def
                } else {
                    RegInit::Maybe
                };
            }
        }
    }
}

/// Applies one block's transfer function. With `diags`, also reports
/// undefined reads (the checking pass).
fn transfer_block(state: &mut State, block: &BasicBlock, mut diags: Option<&mut Vec<Diagnostic>>) {
    for (index, instr) in block.instrs.iter().enumerate() {
        if let Some(out) = diags.as_deref_mut() {
            let at = InstrRef {
                block: block.id,
                index,
            };
            // ---- predicate reads: guard and psrc ----
            for p in instr.guard.iter().map(|g| g.reg).chain(instr.psrc) {
                if state.preds[p.index() as usize] == PredInit::Maybe {
                    out.push(Diagnostic::at(
                        Code::UseBeforeDef,
                        at,
                        format!("{p} may be read before it is defined (`{instr}`)"),
                    ));
                }
            }
            // ---- register reads ----
            let mut flagged: Vec<rfh_isa::Reg> = Vec::new();
            for (_, reg) in instr.reg_srcs() {
                if flagged.contains(&reg) {
                    continue;
                }
                match state.regs[reg.index() as usize] {
                    RegInit::Def => {}
                    RegInit::Guarded(p, negated) => {
                        let same_guard = instr
                            .guard
                            .as_ref()
                            .is_some_and(|g| g.reg == p && g.negated == negated);
                        if !same_guard {
                            flagged.push(reg);
                            let bang = if negated { "!" } else { "" };
                            out.push(Diagnostic::at(
                                Code::UseBeforeDef,
                                at,
                                format!(
                                    "{reg} is defined only under @{bang}{p} and may be read \
                                     undefined here (`{instr}`)"
                                ),
                            ));
                        }
                    }
                    RegInit::Maybe => {
                        flagged.push(reg);
                        out.push(Diagnostic::at(
                            Code::UseBeforeDef,
                            at,
                            format!(
                                "{reg} may be read before it is defined on some path (`{instr}`)"
                            ),
                        ));
                    }
                }
            }
        }

        // ---- predicate definition ----
        if let Some(p) = instr.pdst {
            // Any redefinition of p invalidates "defined under @p" facts:
            // the guard's value at those definitions is gone.
            for r in state.regs.iter_mut() {
                if matches!(*r, RegInit::Guarded(g, _) if g == p) {
                    *r = RegInit::Maybe;
                }
            }
            let slot = &mut state.preds[p.index() as usize];
            if instr.guard.is_none() {
                *slot = PredInit::Def;
            }
            // A guarded setp leaves an undefined predicate undefined.
        }

        // ---- register definitions ----
        for reg in instr.def_regs() {
            let slot = &mut state.regs[reg.index() as usize];
            match &instr.guard {
                None => *slot = RegInit::Def,
                Some(g) => {
                    // A guarded write keeps a definite definition definite
                    // and otherwise guarantees the value only under its
                    // own guard.
                    if *slot != RegInit::Def {
                        *slot = RegInit::Guarded(g.reg, g.negated);
                    }
                }
            }
        }
    }
}

/// Runs the check, appending RFH-L001 findings to `diags`.
pub(crate) fn check(kernel: &Kernel, dom: &DomTree, diags: &mut Vec<Diagnostic>) {
    let n = kernel.blocks.len();
    let bottom = State::bottom(
        usize::from(kernel.num_regs()),
        usize::from(kernel.num_preds()),
    );
    let entry = kernel.entry();
    let preds = kernel.predecessors();

    let mut ins: Vec<Option<State>> = vec![None; n];
    // Everything is undefined when the kernel starts.
    ins[entry.index()] = Some(bottom);

    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n {
            let bid = BlockId::new(b as u32);
            if bid == entry || !dom.is_reachable(bid) {
                continue;
            }
            let mut acc: Option<State> = None;
            for &p in &preds[b] {
                let Some(pin) = &ins[p.index()] else {
                    continue;
                };
                let mut out = pin.clone();
                transfer_block(&mut out, kernel.block(p), None);
                if let Some(fact) = edge_fact(kernel, p, bid) {
                    apply_fact(&mut out, fact);
                }
                match &mut acc {
                    None => acc = Some(out),
                    Some(a) => a.meet(&out),
                }
            }
            if let Some(new_in) = acc {
                if ins[b].as_ref() != Some(&new_in) {
                    ins[b] = Some(new_in);
                    changed = true;
                }
            }
        }
    }

    // Checking pass over every reachable block.
    for block in &kernel.blocks {
        let Some(state) = &ins[block.id.index()] else {
            continue; // unreachable: RFH-L002's business
        };
        let mut state = state.clone();
        transfer_block(&mut state, block, Some(diags));
    }
}
