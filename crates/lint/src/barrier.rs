//! RFH-L004 — barrier divergence (GPUVerify's classic check).
//!
//! A `bar` synchronizes every thread of the CTA; if control flow can
//! diverge before it, some threads may never arrive and the CTA
//! deadlocks. Three ways a barrier ends up divergent:
//!
//! 1. the `bar` itself is guarded by a **non-uniform** predicate;
//! 2. the `bar` sits in a block reachable from a conditional branch with a
//!    non-uniform guard that the block does **not** post-dominate —
//!    threads that diverged at the branch have not reconverged (the SIMT
//!    executor reconverges exactly at immediate post-dominators, so
//!    post-dominance is the precise "reconverged again" criterion here);
//! 3. the `bar` is reachable from the fall-through of a guarded `exit`
//!    with a non-uniform guard — exited threads can never arrive.
//!
//! Uniformity is a flow-insensitive fixpoint: `%tid.x`, `%laneid` and
//! `%warpid` are non-uniform sources; CTA-level specials and immediates
//! are uniform; loads from anything but the parameter space are
//! conservatively non-uniform; everything else is uniform iff all of its
//! inputs (including the guard) are.

use rfh_analysis::DomTree;
use rfh_isa::{InstrRef, Kernel, Operand, PredGuard, Special};

use crate::diag::{Code, Diagnostic};

/// Which registers/predicates may hold thread-dependent values.
pub(crate) struct Uniformity {
    regs: Vec<bool>,
    preds: Vec<bool>,
}

impl Uniformity {
    pub(crate) fn non_uniform_guard(&self, guard: &PredGuard) -> bool {
        self.preds[guard.reg.index() as usize]
    }
}

/// Flow-insensitive taint fixpoint over the whole kernel.
pub(crate) fn uniformity(kernel: &Kernel) -> Uniformity {
    let mut u = Uniformity {
        regs: vec![false; usize::from(kernel.num_regs())],
        preds: vec![false; usize::from(kernel.num_preds())],
    };
    let mut changed = true;
    while changed {
        changed = false;
        for (_, instr) in kernel.iter_instrs() {
            let mut tainted = match instr.op {
                rfh_isa::Opcode::Ld(rfh_isa::Space::Param) => false,
                rfh_isa::Opcode::Ld(_) | rfh_isa::Opcode::Tex => true,
                _ => false,
            };
            tainted |= instr.srcs.iter().any(|s| match s {
                Operand::Reg(r) => u.regs[r.index() as usize],
                Operand::Imm(_) | Operand::FBits(_) => false,
                Operand::Special(sp) => {
                    matches!(sp, Special::TidX | Special::LaneId | Special::WarpId)
                }
            });
            if let Some(p) = instr.psrc {
                tainted |= u.preds[p.index() as usize];
            }
            // A guarded definition's outcome depends on the guard.
            if let Some(g) = &instr.guard {
                tainted |= u.preds[g.reg.index() as usize];
            }
            if !tainted {
                continue;
            }
            for r in instr.def_regs() {
                if !u.regs[r.index() as usize] {
                    u.regs[r.index() as usize] = true;
                    changed = true;
                }
            }
            if let Some(p) = instr.pdst {
                if !u.preds[p.index() as usize] {
                    u.preds[p.index() as usize] = true;
                    changed = true;
                }
            }
        }
    }
    u
}

/// Instruction positions reachable from `start` (inclusive), following the
/// CFG forward. Used to find barriers downstream of a divergence point.
fn reachable_from(kernel: &Kernel, start: InstrRef) -> Vec<InstrRef> {
    let mut out = Vec::new();
    let mut visited_blocks = vec![false; kernel.blocks.len()];
    // (block, starting index); block-entry visits are memoized, the single
    // mid-block start is walked once.
    let mut work = vec![start];
    while let Some(at) = work.pop() {
        if at.index == 0 {
            if visited_blocks[at.block.index()] {
                continue;
            }
            visited_blocks[at.block.index()] = true;
        }
        let block = kernel.block(at.block);
        for index in at.index..block.instrs.len() {
            out.push(InstrRef {
                block: at.block,
                index,
            });
        }
        for succ in kernel.successors(at.block) {
            if !visited_blocks[succ.index()] {
                work.push(InstrRef {
                    block: succ,
                    index: 0,
                });
            }
        }
    }
    out
}

/// Runs the check, appending RFH-L004 findings to `diags`.
pub(crate) fn check(kernel: &Kernel, dom: &DomTree, diags: &mut Vec<Diagnostic>) {
    let bars: Vec<InstrRef> = kernel
        .iter_instrs()
        .filter(|(at, i)| i.op.is_barrier() && dom.is_reachable(at.block))
        .map(|(at, _)| at)
        .collect();
    if bars.is_empty() {
        return;
    }
    let u = uniformity(kernel);
    let postdom = DomTree::post_dominators(kernel);

    // (1) Barriers under a non-uniform guard.
    for &at in &bars {
        if let Some(g) = &kernel.instr(at).guard {
            if u.non_uniform_guard(g) {
                let bang = if g.negated { "!" } else { "" };
                diags.push(Diagnostic::at(
                    Code::BarrierDivergence,
                    at,
                    format!(
                        "barrier is guarded by the non-uniform predicate @{bang}{} — \
                         threads may divide over it and deadlock",
                        g.reg
                    ),
                ));
            }
        }
    }

    // (2) Barriers inside a divergent region: between a branch with a
    // non-uniform guard and its reconvergence point (the branch block's
    // immediate post-dominator — exactly where the SIMT executor
    // reconverges), and (3) barriers reachable past a divergent guarded
    // exit (exited threads never reconverge at all).
    for (at, instr) in kernel.iter_instrs() {
        if !dom.is_reachable(at.block) {
            continue;
        }
        let Some(g) = &instr.guard else { continue };
        if !u.non_uniform_guard(g) {
            continue;
        }
        if instr.op.is_branch() {
            let succs = kernel.successors(at.block);
            if succs.len() != 2 || succs[0] == succs[1] {
                continue; // both edges land together: no divergence
            }
            // Blocks reachable from the branch before reconvergence.
            let rp = postdom.idom(at.block);
            let mut divergent = vec![false; kernel.blocks.len()];
            let mut work = succs;
            while let Some(b) = work.pop() {
                if Some(b) == rp || divergent[b.index()] {
                    continue;
                }
                divergent[b.index()] = true;
                work.extend(kernel.successors(b));
            }
            for &bar in &bars {
                if divergent[bar.block.index()] {
                    diags.push(Diagnostic::at(
                        Code::BarrierDivergence,
                        bar,
                        format!(
                            "barrier may execute under divergent control flow: it sits \
                             between the non-uniformly guarded branch at {at} and its \
                             reconvergence point"
                        ),
                    ));
                }
            }
        } else if instr.op.is_exit() {
            // Threads passing the guard are gone; any barrier the
            // surviving threads can still reach will wait forever.
            let block_len = kernel.block(at.block).instrs.len();
            let downstream = if at.index + 1 < block_len {
                reachable_from(
                    kernel,
                    InstrRef {
                        block: at.block,
                        index: at.index + 1,
                    },
                )
            } else {
                let mut all = Vec::new();
                for s in kernel.successors(at.block) {
                    all.extend(reachable_from(kernel, InstrRef { block: s, index: 0 }));
                }
                all
            };
            for &bar in &bars {
                if downstream.contains(&bar) {
                    diags.push(Diagnostic::at(
                        Code::BarrierDivergence,
                        bar,
                        format!(
                            "barrier is reachable after the divergent thread exit at {at} — \
                             exited threads can never arrive"
                        ),
                    ));
                }
            }
        }
    }
}
