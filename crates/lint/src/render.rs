//! Rendering diagnostics: human-readable lines and machine-readable JSON
//! lines, both deterministic (diagnostics are sorted before rendering).

use std::fmt::Write as _;

use crate::diag::Diagnostic;

/// Renders one diagnostic as a human-readable line:
/// `error[RFH-L001] BB0#2: r1 may be read ...`.
pub fn human_line(kernel_name: &str, d: &Diagnostic) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{}[{}] {}: BB{}",
        d.severity().as_str(),
        d.code.as_str(),
        kernel_name,
        d.block.index()
    );
    if let Some(i) = d.instr {
        let _ = write!(s, "#{i}");
    }
    let _ = write!(s, ": {}", d.message);
    s
}

/// Renders one diagnostic as a JSON object on a single line, with the
/// stable field order `kernel, code, severity, block, instr, message`.
pub fn json_line(kernel_name: &str, d: &Diagnostic) -> String {
    let mut s = String::from("{");
    let _ = write!(s, "\"kernel\":\"{}\"", escape(kernel_name));
    let _ = write!(s, ",\"code\":\"{}\"", d.code.as_str());
    let _ = write!(s, ",\"severity\":\"{}\"", d.severity().as_str());
    let _ = write!(s, ",\"block\":{}", d.block.index());
    match d.instr {
        Some(i) => {
            let _ = write!(s, ",\"instr\":{i}");
        }
        None => s.push_str(",\"instr\":null"),
    }
    let _ = write!(s, ",\"message\":\"{}\"", escape(&d.message));
    s.push('}');
    s
}

/// JSON string escaping (control characters, quotes, backslashes).
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;
    use rfh_isa::{BlockId, InstrRef};

    fn sample() -> Diagnostic {
        Diagnostic::at(
            Code::UseBeforeDef,
            InstrRef {
                block: BlockId::new(1),
                index: 2,
            },
            "r3 may be read before it is defined".to_string(),
        )
    }

    #[test]
    fn human_line_format() {
        let line = human_line("k", &sample());
        assert_eq!(
            line,
            "error[RFH-L001] k: BB1#2: r3 may be read before it is defined"
        );
    }

    #[test]
    fn json_line_format() {
        let line = json_line("k", &sample());
        assert_eq!(
            line,
            "{\"kernel\":\"k\",\"code\":\"RFH-L001\",\"severity\":\"error\",\"block\":1,\
             \"instr\":2,\"message\":\"r3 may be read before it is defined\"}"
        );
    }

    #[test]
    fn json_escapes_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn block_level_diagnostic_has_null_instr() {
        let d = Diagnostic::at_block(Code::UnreachableBlock, BlockId::new(4), "dead".to_string());
        assert!(json_line("k", &d).contains("\"instr\":null"));
        assert_eq!(human_line("k", &d), "warning[RFH-L002] k: BB4: dead");
    }
}
