//! Regression test from review: overlapping 64-bit definitions on the two
//! sides of a hammock (`r4.w64` defines r4/r5; `r5.w64` defines r5/r6)
//! produce a merge group whose members have different root registers. Such
//! a group cannot be co-allocated to a single ORF entry base; its reads
//! must stay on the MRF.

use rfh_alloc::{allocate, AllocConfig};
use rfh_energy::EnergyModel;

#[test]
fn overlapping_w64_merge_group() {
    let mut k = rfh_isa::parse_kernel(
        "
.kernel ow
BB0:
  mov r0, %tid.x
  setp.lt p0 r0, 16
  @p0 bra BB2
BB1:
  ld.shared r4.w64 r0
  bra BB3
BB2:
  ld.shared r5.w64 r0
BB3:
  iadd r7 r5, 1
  iadd r8 r6, 1
  iadd r9 r5, 2
  iadd r10 r6, 2
  iadd r11 r5, 3
  iadd r12 r6, 3
  exit
",
    )
    .unwrap();
    let model = EnergyModel::default();
    let cfg = AllocConfig::default();
    allocate(&mut k, &cfg, &model).unwrap();
    rfh_alloc::validate_placements(&k, &cfg).unwrap();
    // The overlapped halves (r5, r6) must be read from the MRF.
    for (at, i) in k.iter_instrs() {
        if at.block == rfh_isa::BlockId::new(3) {
            for (slot, src) in i.srcs.iter().enumerate() {
                if src.is_reg() {
                    assert_eq!(
                        i.read_locs[slot],
                        rfh_isa::ReadLoc::Mrf,
                        "{at}: overlapped wide value must stay on the MRF"
                    );
                }
            }
        }
    }
}
