//! The allocation pass: LRF first, then ORF, per strand (paper §4).

use std::collections::HashSet;

use rfh_analysis::absint::last_use;
use rfh_analysis::defuse::{all_strand_values_opts, strand_values, StrandValues};
use rfh_analysis::liveness::{annotate_dead, Liveness};
use rfh_analysis::strand::{mark_strands_opts, strand_canonical, StrandOpts};
use rfh_analysis::{DomTree, ReadRef};
use rfh_energy::EnergyModel;
use rfh_isa::{Kernel, ReadLoc, Unit, Width, WriteLoc};

use crate::config::{AllocConfig, LrfMode};
use crate::costs::Costs;
use crate::error::AllocError;
use crate::interval::Occupancy;
use crate::validate::validate_placements;

/// Counters describing what the allocator did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Strands processed.
    pub strands: usize,
    /// Value instances allocated to the LRF.
    pub lrf_values: usize,
    /// Value instances fully allocated to the ORF.
    pub orf_values: usize,
    /// Value instances allocated with a partial range (§4.3).
    pub orf_partial: usize,
    /// Read-operand ranges allocated to the ORF (§4.4), full or partial.
    pub read_operands: usize,
    /// 1 when the kernel was demoted to MRF-only placement because the
    /// allocator's own output failed [`validate_placements`] — graceful
    /// degradation instead of an abort. Always correct (the MRF baseline
    /// needs no annotations), never optimal; a nonzero count indicates an
    /// allocator bug worth reporting.
    pub demoted: usize,
}

/// Number of LRF banks for an enabled LRF mode.
///
/// # Errors
///
/// Returns [`AllocError::Config`] for [`LrfMode::None`]: the LRF pass must
/// not run at all when the LRF is disabled.
fn lrf_banks(mode: LrfMode) -> Result<usize, AllocError> {
    match mode {
        LrfMode::Unified => Ok(1),
        LrfMode::Split => Ok(3),
        LrfMode::None => Err(AllocError::Config(
            "LRF pass invoked with LrfMode::None".into(),
        )),
    }
}

/// Resets every placement annotation to the single-level MRF baseline.
fn reset_placements(kernel: &mut Kernel) {
    for b in kernel.blocks.iter_mut() {
        for i in b.instrs.iter_mut() {
            i.write_loc = WriteLoc::Mrf;
            for loc in i.read_locs.iter_mut() {
                *loc = ReadLoc::Mrf;
            }
        }
    }
}

/// A unit of allocation: either a merge group of produced values, or a
/// read-operand range.
#[derive(Debug, Clone)]
enum CandKind {
    /// Index into `StrandValues::groups`.
    WriteGroup(usize),
    /// Index into `StrandValues::read_operands`.
    ReadOp(usize),
}

#[derive(Debug, Clone)]
struct Cand {
    kind: CandKind,
    priority: f64,
    begin: usize,
    end: usize,
    width_slots: usize,
}

/// Unique reads of a merge group, deduplicated (merge reads attach to every
/// member) and sorted by position.
fn group_reads(sv: &StrandValues, group: &[usize]) -> Vec<ReadRef> {
    let mut reads: Vec<ReadRef> = Vec::new();
    let mut seen: HashSet<(rfh_isa::InstrRef, rfh_isa::Slot)> = HashSet::new();
    for &m in group {
        for r in &sv.instances[m].reads {
            if seen.insert((r.at, r.slot)) {
                reads.push(*r);
            }
        }
    }
    reads.sort_by_key(|r| (r.pos, r.slot));
    reads
}

fn group_write_savings(
    sv: &StrandValues,
    group: &[usize],
    reads: &[ReadRef],
    costs: &Costs,
) -> f64 {
    let read_gain: f64 = reads
        .iter()
        .map(|r| costs.mrf_read(r.unit) - costs.orf_read(r.unit))
        .sum();
    let live_out = sv.instances[group[0]].live_out;
    let mut savings = read_gain;
    for &m in group {
        let inst = &sv.instances[m];
        let w = inst.width.regs() as f64;
        let unit = if inst.produced_on_shared {
            Unit::Mem
        } else {
            Unit::Alu
        };
        savings -= costs.orf_write(unit) * w;
        if !live_out {
            savings += costs.mrf_write * w;
        }
    }
    savings
}

fn priority_of_cfg(config: &AllocConfig, savings: f64, begin: usize, end: usize) -> f64 {
    if config.occupancy_priority {
        savings / (end.saturating_sub(begin)).max(1) as f64
    } else {
        savings
    }
}

/// Occupancy positions are in *half-slots*: instruction `p` reads its
/// operands at `2p` and writes its result at `2p + 1`. A value produced at
/// `p` therefore occupies `[2p+1, 2·last_read]`, and can share an entry
/// with a value whose last read is at `p` — exactly the reuse a hardware
/// cache gets for back-to-back producer/consumer chains.
fn write_interval(def_pos: usize, last_read_pos: usize) -> (usize, usize) {
    let begin = 2 * def_pos + 1;
    (begin, (2 * last_read_pos).max(begin))
}

/// A read-operand fill deposits at the first read's write phase and must
/// survive until the last covered read.
fn fill_interval(first_read_pos: usize, last_read_pos: usize) -> (usize, usize) {
    let begin = 2 * first_read_pos + 1;
    (begin, (2 * last_read_pos).max(begin))
}

/// Applies a write-group allocation: every member writes the entry, every
/// covered read comes from it.
fn apply_write_group(
    kernel: &mut Kernel,
    sv: &StrandValues,
    group: &[usize],
    reads: &[ReadRef],
    entry: u8,
    also_mrf: bool,
) {
    let root = sv.instances[group[0]].reg;
    for &m in group {
        let inst = &sv.instances[m];
        kernel.instr_mut(inst.def).write_loc = WriteLoc::Orf { entry, also_mrf };
    }
    for r in reads {
        let offset = (r.reg.index() - root.index()) as u8;
        let instr = kernel.instr_mut(r.at);
        debug_assert_eq!(instr.srcs[r.slot.index()].as_reg(), Some(r.reg));
        instr.read_locs[r.slot.index()] = ReadLoc::Orf(entry + offset);
    }
}

fn apply_lrf_group(
    kernel: &mut Kernel,
    sv: &StrandValues,
    group: &[usize],
    reads: &[ReadRef],
    bank: Option<rfh_isa::Slot>,
    also_mrf: bool,
) {
    for &m in group {
        let inst = &sv.instances[m];
        kernel.instr_mut(inst.def).write_loc = WriteLoc::Lrf { bank, also_mrf };
    }
    for r in reads {
        let instr = kernel.instr_mut(r.at);
        instr.read_locs[r.slot.index()] = ReadLoc::Lrf(bank);
    }
}

fn apply_read_operand(kernel: &mut Kernel, reads: &[ReadRef], entry: u8) {
    let first = &reads[0];
    kernel.instr_mut(first.at).read_locs[first.slot.index()] = ReadLoc::MrfFillOrf(entry);
    for r in &reads[1..] {
        // Other operands of the filling instruction read simultaneously and
        // cannot see the fill; they stay on the MRF.
        if r.pos > first.pos {
            kernel.instr_mut(r.at).read_locs[r.slot.index()] = ReadLoc::Orf(entry);
        }
    }
}

/// The reads of a read-operand range that the fill (its first read) can
/// actually serve: reads of later instructions whose block the fill's
/// block dominates. Within a strand all control flow is forward, so block
/// dominance of the fill implies the fill executes earlier on every path.
fn dominated_coverage(reads: &[ReadRef], dom: &DomTree) -> Vec<ReadRef> {
    let fill = reads[0];
    let mut covered = vec![fill];
    covered.extend(reads[1..].iter().filter(|r| {
        r.pos > fill.pos
            && (r.at.block == fill.at.block || dom.dominates(fill.at.block, r.at.block))
    }));
    covered
}

/// Allocates one strand: LRF pass (§4.6), then ORF pass (Figure 7) with the
/// partial-range and read-operand extensions.
fn allocate_strand(
    kernel: &mut Kernel,
    sv: &StrandValues,
    config: &AllocConfig,
    costs: &Costs,
    dom: &DomTree,
    stats: &mut AllocStats,
) -> Result<(), AllocError> {
    let mut lrf_allocated: HashSet<usize> = HashSet::new();

    // ---------------- LRF pass ----------------
    if config.lrf.enabled() {
        let banks = lrf_banks(config.lrf)?;
        let mut occ = Occupancy::new(banks);
        let mut cands: Vec<(usize, Vec<ReadRef>, usize, f64, f64)> = Vec::new();
        for (g, members) in sv.groups.iter().enumerate() {
            let eligible = members.iter().all(|&m| {
                let i = &sv.instances[m];
                !i.produced_on_shared && i.width == Width::W32
            });
            if !eligible {
                continue;
            }
            let reads = group_reads(sv, members);
            if reads.iter().any(|r| r.unit.is_shared()) {
                continue; // shared datapath cannot reach the LRF
            }
            let bank = match config.lrf {
                LrfMode::Split => {
                    let mut slots: Vec<_> = reads.iter().map(|r| r.slot).collect();
                    slots.dedup();
                    match slots.as_slice() {
                        [] => 0,
                        [s] => s.index(),
                        _ => continue, // multi-slot consumers go to the ORF
                    }
                }
                _ => 0,
            };
            let live_out = sv.instances[members[0]].live_out;
            let savings = costs.lrf_write_savings(&reads, members.len(), live_out);
            if savings <= 0.0 {
                continue;
            }
            let def = members
                .iter()
                .map(|&m| sv.instances[m].def_pos)
                .min()
                .expect("merge groups are nonempty");
            let last = reads.iter().map(|r| r.pos).max().unwrap_or(def);
            let (begin, end) = write_interval(def, last);
            cands.push((
                g,
                reads,
                bank,
                savings,
                priority_of_cfg(config, savings, begin, end),
            ));
        }
        cands.sort_by(|a, b| b.4.partial_cmp(&a.4).unwrap_or(std::cmp::Ordering::Equal));
        for (g, reads, bank, _savings, _prio) in cands {
            let members = &sv.groups[g];
            let def = members
                .iter()
                .map(|&m| sv.instances[m].def_pos)
                .min()
                .expect("merge groups are nonempty");
            let last = reads.iter().map(|r| r.pos).max().unwrap_or(def);
            let (begin, end) = write_interval(def, last);
            if occ.available(bank, begin, end) {
                occ.allocate(bank, begin, end);
                let live_out = sv.instances[members[0]].live_out;
                let bank_enc = match config.lrf {
                    LrfMode::Split => Some(rfh_isa::Slot::from_index(bank)),
                    _ => None,
                };
                apply_lrf_group(kernel, sv, members, &reads, bank_enc, live_out);
                stats.lrf_values += members.len();
                lrf_allocated.insert(g);
            }
        }
    }

    // ---------------- ORF pass ----------------
    if config.orf_entries == 0 {
        return Ok(());
    }
    let mut occ = Occupancy::new(config.orf_entries);
    let mut cands: Vec<Cand> = Vec::new();
    for (g, members) in sv.groups.iter().enumerate() {
        if lrf_allocated.contains(&g) {
            continue;
        }
        let widths: HashSet<Width> = members.iter().map(|&m| sv.instances[m].width).collect();
        let roots: HashSet<_> = members.iter().map(|&m| sv.instances[m].reg).collect();
        if widths.len() != 1 || roots.len() != 1 {
            // Mixed widths, or a merge of *overlapping* wide defs with
            // different root registers (e.g. r4.w64 and r5.w64 both
            // defining r5): members cannot share one entry base, so every
            // read falls back to the MRF.
            continue;
        }
        let width_slots = sv.instances[members[0]].width.regs() as usize;
        let reads = group_reads(sv, members);
        let savings = group_write_savings(sv, members, &reads, costs);
        if savings <= 0.0 {
            continue;
        }
        let def = members
            .iter()
            .map(|&m| sv.instances[m].def_pos)
            .min()
            .expect("merge groups are nonempty");
        let last = reads.iter().map(|r| r.pos).max().unwrap_or(def);
        let (begin, end) = write_interval(def, last);
        cands.push(Cand {
            kind: CandKind::WriteGroup(g),
            priority: priority_of_cfg(config, savings, begin, end),
            begin,
            end,
            width_slots,
        });
    }
    let read_op_coverage: Vec<Vec<ReadRef>> = sv
        .read_operands
        .iter()
        .map(|ro| dominated_coverage(&ro.reads, dom))
        .collect();
    if config.read_operands {
        for (i, covered) in read_op_coverage.iter().enumerate() {
            let savings = costs.read_operand_savings(covered);
            if savings <= 0.0 {
                continue;
            }
            let (begin, end) = fill_interval(
                covered[0].pos,
                covered.last().expect("coverage includes the fill").pos,
            );
            cands.push(Cand {
                kind: CandKind::ReadOp(i),
                priority: priority_of_cfg(config, savings, begin, end),
                begin,
                end,
                width_slots: 1,
            });
        }
    }
    cands.sort_by(|a, b| {
        b.priority
            .partial_cmp(&a.priority)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    for cand in cands {
        match cand.kind {
            CandKind::WriteGroup(g) => {
                let members = &sv.groups[g];
                let reads = group_reads(sv, members);
                if let Some(base) = occ.find_free(cand.begin, cand.end, cand.width_slots) {
                    occ.allocate_wide(base, cand.begin, cand.end, cand.width_slots);
                    let live_out = sv.instances[members[0]].live_out;
                    apply_write_group(kernel, sv, members, &reads, base as u8, live_out);
                    stats.orf_values += members.len();
                    continue;
                }
                // ---- partial range allocation (§4.3), singletons only ----
                if !config.partial_ranges || members.len() != 1 || reads.is_empty() {
                    continue;
                }
                let inst = &sv.instances[members[0]];
                let unit = if inst.produced_on_shared {
                    Unit::Mem
                } else {
                    Unit::Alu
                };
                for m in (1..reads.len()).rev() {
                    let kept = &reads[..m];
                    let gain: f64 = kept
                        .iter()
                        .map(|r| costs.mrf_read(r.unit) - costs.orf_read(r.unit))
                        .sum();
                    // A partial range always keeps the MRF copy for the
                    // dropped reads, so no MRF write is saved.
                    let savings = gain - costs.orf_write(unit) * cand.width_slots as f64;
                    if savings <= 0.0 {
                        break;
                    }
                    let end =
                        (2 * kept.last().expect("kept reads are nonempty").pos).max(cand.begin);
                    if let Some(base) = occ.find_free(cand.begin, end, cand.width_slots) {
                        occ.allocate_wide(base, cand.begin, end, cand.width_slots);
                        apply_write_group(kernel, sv, members, kept, base as u8, true);
                        stats.orf_partial += 1;
                        break;
                    }
                }
            }
            CandKind::ReadOp(i) => {
                let covered = &read_op_coverage[i];
                let mut m = covered.len();
                loop {
                    if m < 2 {
                        break;
                    }
                    let kept = &covered[..m];
                    let savings = costs.read_operand_savings(kept);
                    if savings <= 0.0 {
                        break;
                    }
                    let (b, e) = fill_interval(
                        kept[0].pos,
                        kept.last().expect("kept reads are nonempty").pos,
                    );
                    if let Some(base) = occ.find_free(b, e, 1) {
                        occ.allocate(base, b, e);
                        apply_read_operand(kernel, kept, base as u8);
                        stats.read_operands += 1;
                        break;
                    }
                    if !config.partial_ranges {
                        break;
                    }
                    m -= 1;
                }
            }
        }
    }
    Ok(())
}

/// Runs the full allocation pipeline on a kernel:
///
/// 1. validates the input kernel ([`rfh_isa::validate`]),
/// 2. clears existing placements (idempotent),
/// 3. marks strands and annotates static liveness,
/// 4. allocates every strand (LRF pass, then ORF pass),
/// 5. proves the resulting placements consistent with
///    [`validate_placements`].
///
/// If step 5 ever fails — an allocator bug, not a caller error — the kernel
/// is *demoted*: all placements are reset to the single-level MRF baseline
/// (always architecturally correct) and [`AllocStats::demoted`] is set, so
/// callers keep a working pipeline and a signal to report.
///
/// # Errors
///
/// Returns [`AllocError::InvalidKernel`] when the input kernel fails
/// structural validation, and [`AllocError::Config`] when the configuration
/// is internally inconsistent. This function does not panic.
pub fn allocate(
    kernel: &mut Kernel,
    config: &AllocConfig,
    model: &EnergyModel,
) -> Result<AllocStats, AllocError> {
    allocate_with_hints(kernel, config, model, false)
}

/// [`allocate`] with optional compiler-assisted last-use hints (the
/// Abaie Shoushtary 2023 direction, ROADMAP item 3): when `use_hints` is
/// set, the abstract-interpretation last-use pass
/// ([`rfh_analysis::absint::last_use`]) runs first, and
///
/// * static `dead_after` flags are computed under the refined
///   (covered-read-excluding) liveness, releasing ORF/LRF entries at the
///   provable last read instead of region end;
/// * covered reads attach to their covering in-strand guarded definition,
///   so values whose reads are all covered skip the MRF copy entirely.
///
/// With `use_hints == false` this is byte-for-byte the plain [`allocate`]
/// pipeline.
///
/// # Errors
///
/// Exactly as [`allocate`]: [`AllocError::InvalidKernel`] for structurally
/// invalid input, [`AllocError::Config`] for inconsistent configuration.
pub fn allocate_with_hints(
    kernel: &mut Kernel,
    config: &AllocConfig,
    model: &EnergyModel,
    use_hints: bool,
) -> Result<AllocStats, AllocError> {
    rfh_isa::validate(kernel)?;
    // Reset all placements to the single-level baseline.
    reset_placements(kernel);

    let info = mark_strands_opts(
        kernel,
        StrandOpts {
            split_on_deschedule: !config.ideal_no_deschedule_split,
        },
    );
    // The hint pass requires `ends_strand` bits, so it runs after strand
    // marking.
    let hints = use_hints.then(|| last_use::analyze(kernel));
    let liveness = match &hints {
        Some(h) => h.liveness.clone(),
        None => Liveness::compute(kernel),
    };
    match &hints {
        Some(h) => h.apply_dead_flags(kernel),
        None => annotate_dead(kernel, &liveness),
    }

    let mut stats = AllocStats {
        strands: info.strands.len(),
        ..Default::default()
    };
    if config.is_baseline() {
        return Ok(stats);
    }

    let costs = Costs::from_model(model, config.orf_entries);
    let dom = DomTree::dominators(kernel);
    let values = all_strand_values_opts(kernel, &info, &liveness, hints.as_ref());
    for sv in &values {
        allocate_strand(kernel, sv, config, &costs, &dom, &mut stats)?;
    }

    if validate_placements(kernel, config).is_err() {
        stats = demote_to_mrf(kernel, stats);
    }
    Ok(stats)
}

/// The allocation of one strand, detached from any particular kernel:
/// placement annotations per strand-relative instruction plus that
/// strand's contribution to [`AllocStats`]. Cached under the strand's
/// [fingerprint](strand_fingerprint) by [`allocate_incremental`] and
/// spliced back instead of re-running analysis + allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrandAllocation {
    /// `(write_loc, read_locs)` per instruction, in strand layout order.
    pub placements: Vec<(WriteLoc, Vec<ReadLoc>)>,
    /// Value instances this strand placed in the LRF.
    pub lrf_values: usize,
    /// Value instances this strand placed fully in the ORF.
    pub orf_values: usize,
    /// Partial ranges this strand allocated (§4.3).
    pub orf_partial: usize,
    /// Read-operand ranges this strand allocated (§4.4).
    pub read_operands: usize,
}

/// Incremental-allocation counters: how much work the cache saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Strands in the kernel.
    pub strands: usize,
    /// Strands spliced from cache (analysis + allocation skipped).
    pub hits: usize,
    /// Strands analyzed and allocated from scratch.
    pub misses: usize,
}

/// The cache key for one strand's allocation: the strand-relative
/// canonical text ([`rfh_analysis::strand::strand_canonical`]) salted with
/// everything else that determines placement — the allocation
/// configuration and the energy model's cost surface.
pub fn strand_fingerprint(canonical: &str, config: &AllocConfig, model: &EnergyModel) -> String {
    format!("{canonical}\0cfg={config:?}\0model={model:?}")
}

/// Incremental [`allocate`]: identical output, but each strand's
/// allocation is looked up in an external cache by content fingerprint
/// before being recomputed.
///
/// For every strand the fingerprint ([`strand_fingerprint`] over
/// [`strand_canonical`]) is offered to `lookup`; a hit splices the cached
/// placements onto the strand's instructions, a miss runs the monolithic
/// per-strand pipeline (def-use analysis + LRF/ORF allocation) and offers
/// the result to `publish`. Because [`strand_canonical`] captures every
/// input the per-strand allocator reads — and the per-strand allocator
/// only ever writes its own strand's placement annotations — the
/// recombined kernel and [`AllocStats`] are **byte-identical** to a
/// monolithic [`allocate`] run, whatever mixture of hits and misses
/// occurs. A cached entry whose shape does not match the strand (placement
/// count or per-instruction operand count) is ignored and recomputed, so a
/// corrupted cache degrades to a slower run, never a wrong one.
///
/// # Errors
///
/// Exactly as [`allocate`]: [`AllocError::InvalidKernel`] for structurally
/// invalid input, [`AllocError::Config`] for inconsistent configuration.
pub fn allocate_incremental(
    kernel: &mut Kernel,
    config: &AllocConfig,
    model: &EnergyModel,
    lookup: &mut dyn FnMut(&str) -> Option<StrandAllocation>,
    publish: &mut dyn FnMut(&str, &StrandAllocation),
) -> Result<(AllocStats, IncrementalStats), AllocError> {
    rfh_isa::validate(kernel)?;
    reset_placements(kernel);

    let info = mark_strands_opts(
        kernel,
        StrandOpts {
            split_on_deschedule: !config.ideal_no_deschedule_split,
        },
    );
    let liveness = Liveness::compute(kernel);
    annotate_dead(kernel, &liveness);

    let mut stats = AllocStats {
        strands: info.strands.len(),
        ..Default::default()
    };
    let mut inc = IncrementalStats {
        strands: info.strands.len(),
        ..Default::default()
    };
    if config.is_baseline() {
        return Ok((stats, inc));
    }

    let costs = Costs::from_model(model, config.orf_entries);
    let dom = DomTree::dominators(kernel);
    for sid in info.strands.iter().map(|s| s.id) {
        let canonical = strand_canonical(kernel, &info, &liveness, &dom, sid);
        let fp = strand_fingerprint(&canonical, config, model);
        let instrs = &info.strand(sid).instrs;
        if let Some(cached) = lookup(&fp).filter(|c| splice_fits(kernel, instrs, c)) {
            for (at, (write_loc, read_locs)) in instrs.iter().zip(&cached.placements) {
                let instr = kernel.instr_mut(*at);
                instr.write_loc = *write_loc;
                instr.read_locs.clone_from(read_locs);
            }
            stats.lrf_values += cached.lrf_values;
            stats.orf_values += cached.orf_values;
            stats.orf_partial += cached.orf_partial;
            stats.read_operands += cached.read_operands;
            inc.hits += 1;
            continue;
        }
        let sv = strand_values(kernel, &info, &liveness, sid);
        let mut local = AllocStats::default();
        allocate_strand(kernel, &sv, config, &costs, &dom, &mut local)?;
        stats.lrf_values += local.lrf_values;
        stats.orf_values += local.orf_values;
        stats.orf_partial += local.orf_partial;
        stats.read_operands += local.read_operands;
        inc.misses += 1;
        publish(
            &fp,
            &StrandAllocation {
                placements: instrs
                    .iter()
                    .map(|at| {
                        let i = kernel.instr(*at);
                        (i.write_loc, i.read_locs.clone())
                    })
                    .collect(),
                lrf_values: local.lrf_values,
                orf_values: local.orf_values,
                orf_partial: local.orf_partial,
                read_operands: local.read_operands,
            },
        );
    }

    if validate_placements(kernel, config).is_err() {
        stats = demote_to_mrf(kernel, stats);
    }
    Ok((stats, inc))
}

/// Whether a cached strand allocation structurally fits the strand it is
/// about to be spliced onto (defense against a corrupted or colliding
/// cache entry — a mismatch falls back to recomputation).
fn splice_fits(kernel: &Kernel, instrs: &[rfh_isa::InstrRef], cached: &StrandAllocation) -> bool {
    cached.placements.len() == instrs.len()
        && instrs
            .iter()
            .zip(&cached.placements)
            .all(|(at, (_, read_locs))| kernel.instr(*at).read_locs.len() == read_locs.len())
}

/// Graceful degradation: discards all hierarchy placements, leaving the
/// kernel on the always-correct MRF-only baseline, and records the demotion
/// in the returned stats.
fn demote_to_mrf(kernel: &mut Kernel, stats: AllocStats) -> AllocStats {
    reset_placements(kernel);
    AllocStats {
        strands: stats.strands,
        lrf_values: 0,
        orf_values: 0,
        orf_partial: 0,
        read_operands: 0,
        demoted: stats.demoted + 1,
    }
}

/// Convenience: the registers an instruction reads from each hierarchy
/// level, for tests and reporting.
pub fn read_level_counts(kernel: &Kernel) -> (usize, usize, usize) {
    let (mut lrf, mut orf, mut mrf) = (0, 0, 0);
    for (_, i) in kernel.iter_instrs() {
        for (idx, s) in i.srcs.iter().enumerate() {
            if !s.is_reg() {
                continue;
            }
            match i.read_locs[idx] {
                ReadLoc::Lrf(_) => lrf += 1,
                ReadLoc::Orf(_) => orf += 1,
                ReadLoc::Mrf | ReadLoc::MrfFillOrf(_) => mrf += 1,
            }
        }
    }
    (lrf, orf, mrf)
}

/// Convenience: counts of value-producing writes by destination kind, for
/// tests — `(lrf, orf, mrf_only, dual)` where `dual` counts upper-level
/// writes that also write the MRF.
pub fn write_level_counts(kernel: &Kernel) -> (usize, usize, usize, usize) {
    let (mut lrf, mut orf, mut mrf_only, mut dual) = (0, 0, 0, 0);
    for (_, i) in kernel.iter_instrs() {
        if i.dst.is_none() {
            continue;
        }
        match i.write_loc {
            WriteLoc::Mrf => mrf_only += 1,
            WriteLoc::Orf { also_mrf, .. } => {
                orf += 1;
                if also_mrf {
                    dual += 1;
                }
            }
            WriteLoc::Lrf { also_mrf, .. } => {
                lrf += 1;
                if also_mrf {
                    dual += 1;
                }
            }
        }
    }
    (lrf, orf, mrf_only, dual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllocConfig;
    use rfh_isa::{parse_kernel, BlockId, InstrRef, ReadLoc, WriteLoc};

    fn at(b: u32, i: usize) -> InstrRef {
        InstrRef {
            block: BlockId::new(b),
            index: i,
        }
    }

    fn alloc(text: &str, config: AllocConfig) -> (Kernel, AllocStats) {
        let mut k = parse_kernel(text).unwrap();
        let stats = allocate(&mut k, &config, &EnergyModel::paper()).expect("valid kernel");
        (k, stats)
    }

    #[test]
    fn lrf_banks_rejects_disabled_mode() {
        assert_eq!(lrf_banks(LrfMode::Unified).unwrap(), 1);
        assert_eq!(lrf_banks(LrfMode::Split).unwrap(), 3);
        let e = lrf_banks(LrfMode::None).unwrap_err();
        assert!(matches!(e, AllocError::Config(_)), "{e}");
        assert!(e.to_string().contains("LrfMode::None"), "{e}");
    }

    #[test]
    fn invalid_kernel_is_an_error_not_a_panic() {
        // Mid-block control transfer: structurally invalid.
        let mut k = parse_kernel(".kernel k\nBB0:\n  iadd r1 r0, 1\n  exit\n").unwrap();
        k.blocks[0].instrs.swap(0, 1);
        let e = allocate(&mut k, &AllocConfig::two_level(3), &EnergyModel::paper()).unwrap_err();
        assert!(matches!(e, AllocError::InvalidKernel(_)), "{e}");
    }

    #[test]
    fn demotion_resets_placements_and_counts() {
        let text = ".kernel d\nBB0:\n  iadd r1 r0, 1\n  st.global r0, r1\n  exit\n";
        let mut k = parse_kernel(text).unwrap();
        let stats = allocate(&mut k, &AllocConfig::two_level(3), &EnergyModel::paper()).unwrap();
        assert!(stats.orf_values > 0, "precondition: something allocated");
        let demoted = demote_to_mrf(&mut k, stats);
        assert_eq!(demoted.demoted, 1);
        assert_eq!(demoted.strands, stats.strands);
        assert_eq!(
            (demoted.lrf_values, demoted.orf_values, demoted.orf_partial),
            (0, 0, 0)
        );
        let (lrf, orf, _) = read_level_counts(&k);
        assert_eq!((lrf, orf), (0, 0), "all reads back on the MRF");
        // The demoted kernel is trivially valid under any config.
        validate_placements(&k, &AllocConfig::two_level(3)).unwrap();
    }

    #[test]
    fn baseline_config_changes_nothing() {
        let text = ".kernel b\nBB0:\n  iadd r1 r0, 1\n  iadd r2 r1, 1\n  exit\n";
        let (k, stats) = alloc(text, AllocConfig::baseline());
        assert_eq!(stats.orf_values + stats.lrf_values, 0);
        let (lrf, orf, mrf) = read_level_counts(&k);
        assert_eq!((lrf, orf), (0, 0));
        assert_eq!(mrf, 2);
    }

    #[test]
    fn dying_chain_goes_to_orf() {
        let text = "
.kernel chain
BB0:
  iadd r1 r0, 1
  iadd r2 r1, 1
  st.global r0, r2
  exit
";
        let (k, stats) = alloc(text, AllocConfig::two_level(3));
        assert_eq!(stats.orf_values, 2, "r1 and r2 both die in the strand");
        // Neither write touches the MRF.
        assert!(matches!(
            k.instr(at(0, 0)).write_loc,
            WriteLoc::Orf {
                also_mrf: false,
                ..
            }
        ));
        assert!(matches!(
            k.instr(at(0, 1)).write_loc,
            WriteLoc::Orf {
                also_mrf: false,
                ..
            }
        ));
        assert!(matches!(k.instr(at(0, 1)).read_locs[0], ReadLoc::Orf(_)));
        assert!(matches!(k.instr(at(0, 2)).read_locs[1], ReadLoc::Orf(_)));
    }

    #[test]
    fn live_out_value_written_to_both() {
        let text = "
.kernel lo
BB0:
  iadd r1 r0, 1
  iadd r2 r1, 1
  ld.global r3 r0
  iadd r4 r3, r1
  st.global r0, r4
  exit
";
        // r1 is read in strand 1 (by the iadd) and again in strand 2.
        let (k, _) = alloc(text, AllocConfig::two_level(3));
        match k.instr(at(0, 0)).write_loc {
            WriteLoc::Orf { also_mrf, .. } => assert!(also_mrf, "live-out needs the MRF copy"),
            other => panic!("expected ORF write, got {other}"),
        }
        // The cross-strand read comes from the MRF.
        assert_eq!(k.instr(at(0, 3)).read_locs[1], ReadLoc::Mrf);
    }

    #[test]
    fn lrf_captures_next_instruction_consumer() {
        let text = "
.kernel l
BB0:
  fmul r1 r0, r0
  fadd r2 r1, r0
  st.global r0, r2
  exit
";
        let (k, stats) = alloc(text, AllocConfig::three_level(3, false));
        assert!(stats.lrf_values >= 1);
        assert!(matches!(k.instr(at(0, 0)).write_loc, WriteLoc::Lrf { .. }));
        assert_eq!(k.instr(at(0, 1)).read_locs[0], ReadLoc::Lrf(None));
    }

    #[test]
    fn shared_consumer_blocks_lrf_but_not_orf() {
        let text = "
.kernel sh
BB0:
  iadd r1 r0, 4
  ld.shared r2 r1
  st.global r0, r2
  exit
";
        // r1 is consumed by the memory unit: ORF-eligible, not LRF.
        let (k, _) = alloc(text, AllocConfig::three_level(3, false));
        assert!(matches!(k.instr(at(0, 0)).write_loc, WriteLoc::Orf { .. }));
        // r2 is produced by the shared datapath (load): not LRF either.
        assert!(!matches!(k.instr(at(0, 1)).write_loc, WriteLoc::Lrf { .. }));
    }

    #[test]
    fn figure_8b_read_operand_allocation() {
        // R0 read by eight instructions but never written in the strand.
        let mut text = String::from(".kernel f8b\nBB0:\n");
        for i in 1..=8 {
            text.push_str(&format!("  iadd r{i} r0, {i}\n"));
        }
        for i in 1..=8 {
            text.push_str(&format!("  st.global r9, r{i}\n"));
        }
        text.push_str("  exit\n");
        let (k, stats) = alloc(&text, AllocConfig::two_level(3));
        assert!(
            stats.read_operands >= 1,
            "r0 should be read-operand allocated"
        );
        assert!(matches!(
            k.instr(at(0, 0)).read_locs[0],
            ReadLoc::MrfFillOrf(_)
        ));
        for i in 1..8 {
            assert!(
                matches!(k.instr(at(0, i)).read_locs[0], ReadLoc::Orf(_)),
                "read {i} of r0 should hit the ORF"
            );
        }
        // Disabled, the same kernel allocates no read operands.
        let (_, plain) = alloc(&text, AllocConfig::two_level_plain(3));
        assert_eq!(plain.read_operands, 0);
    }

    #[test]
    fn figure_10c_hammock_coallocates() {
        let text = "
.kernel h
BB0:
  mov r0, %tid.x
  setp.lt p0 r0, 16
  @p0 bra BB2
BB1:
  iadd r1 r0, 1
  bra BB3
BB2:
  iadd r1 r0, 2
BB3:
  iadd r2 r1, 3
  st.global r0, r2
  exit
";
        let (k, _) = alloc(text, AllocConfig::two_level(3));
        let w1 = k.instr(at(1, 0)).write_loc;
        let w2 = k.instr(at(2, 0)).write_loc;
        match (w1, w2) {
            (
                WriteLoc::Orf {
                    entry: e1,
                    also_mrf: false,
                },
                WriteLoc::Orf {
                    entry: e2,
                    also_mrf: false,
                },
            ) => {
                assert_eq!(e1, e2, "hammock sides must share the entry");
                assert_eq!(k.instr(at(3, 0)).read_locs[0], ReadLoc::Orf(e1));
            }
            other => panic!("expected co-allocated ORF writes, got {other:?}"),
        }
    }

    #[test]
    fn occupancy_pressure_spills_to_mrf() {
        // Four simultaneously-live values in a 1-entry ORF: only one wins.
        let text = "
.kernel p
BB0:
  iadd r1 r0, 1
  iadd r2 r0, 2
  iadd r3 r0, 3
  iadd r4 r0, 4
  st.global r1, r2
  st.global r3, r4
  exit
";
        let (_, stats1) = alloc(text, AllocConfig::two_level_plain(1));
        let (_, stats3) = alloc(text, AllocConfig::two_level_plain(3));
        assert!(stats1.orf_values < stats3.orf_values);
        assert!(stats1.orf_values >= 1);
    }

    #[test]
    fn split_lrf_separates_slots() {
        // Two values read in different slots of their consumers can share
        // the split LRF (different banks) but collide in a unified LRF.
        let text = "
.kernel s
BB0:
  fmul r1 r0, r0
  fadd r2 r0, r0
  fadd r3 r1, r2
  st.global r0, r3
  exit
";
        let (_, unified) = alloc(text, AllocConfig::three_level(3, false));
        let (_, split) = alloc(text, AllocConfig::three_level(3, true));
        assert!(split.lrf_values >= unified.lrf_values);
        assert!(
            split.lrf_values >= 2,
            "r1 (slot A) and r2 (slot B) fit separate banks"
        );
    }

    #[test]
    fn wide_value_takes_two_entries() {
        let text = "
.kernel w
BB0:
  ld.shared r4.w64 r0
  iadd r6 r4, 1
  iadd r7 r5, 1
  st.global r6, r7
  exit
";
        let (k, _) = alloc(text, AllocConfig::two_level(2));
        if let WriteLoc::Orf { entry, .. } = k.instr(at(0, 0)).write_loc {
            assert_eq!(k.instr(at(0, 1)).read_locs[0], ReadLoc::Orf(entry));
            assert_eq!(k.instr(at(0, 2)).read_locs[0], ReadLoc::Orf(entry + 1));
        } else {
            panic!("wide value should be ORF-allocated with 2 entries");
        }
        // A 1-entry ORF cannot hold the wide value (narrow ones still can).
        let (k1, _) = alloc(text, AllocConfig::two_level_plain(1));
        assert_eq!(k1.instr(at(0, 0)).write_loc, WriteLoc::Mrf);
    }

    #[test]
    fn allocation_is_idempotent() {
        let text = "
.kernel i
BB0:
  iadd r1 r0, 1
  iadd r2 r1, 1
  st.global r0, r2
  exit
";
        let mut k = parse_kernel(text).unwrap();
        let cfg = AllocConfig::three_level(3, true);
        let model = EnergyModel::paper();
        allocate(&mut k, &cfg, &model).unwrap();
        let once = k.clone();
        allocate(&mut k, &cfg, &model).unwrap();
        assert_eq!(k, once);
    }

    #[test]
    fn same_instruction_multi_slot_read_operand_is_safe() {
        // ffma reads r1 in all three slots: a fill can only help later
        // instructions; all same-pos reads stay on the MRF.
        let text = "
.kernel m
BB0:
  ffma r2 r1, r1, r1
  fadd r3 r1, r2
  st.global r3, r2
  exit
";
        let (k, _) = alloc(text, AllocConfig::two_level(3));
        let ffma = k.instr(at(0, 0));
        let fills = ffma
            .read_locs
            .iter()
            .filter(|l| l.orf_fill().is_some())
            .count();
        assert!(fills <= 1);
        for l in &ffma.read_locs {
            assert!(
                !matches!(l, ReadLoc::Orf(_)),
                "same-pos reads cannot see the fill"
            );
        }
    }

    #[test]
    fn dead_value_avoids_mrf_write() {
        // r1 is never read anywhere: cheapest is an ORF-only write.
        let text = ".kernel d\nBB0:\n  iadd r1 r0, 1\n  st.global r0, r0\n  exit\n";
        let (k, _) = alloc(text, AllocConfig::two_level(3));
        assert!(
            matches!(
                k.instr(at(0, 0)).write_loc,
                WriteLoc::Orf {
                    also_mrf: false,
                    ..
                }
            ),
            "dead value should die in the ORF"
        );
    }
}

#[cfg(test)]
mod hints_tests {
    use super::*;
    use crate::config::AllocConfig;
    use rfh_isa::parse_kernel;

    /// A guarded reduction tail: every value in the `@p0` chain is defined
    /// and consumed under the same guard, so the last-use pass covers the
    /// reads and the allocator can skip the MRF copies entirely.
    const GUARDED_CHAIN: &str = "
.kernel gc
BB0:
  mov r0, %tid.x
  setp.lt p0 r0, 8
  @p0 ld.shared r6 r0
  @p0 fadd r8 r6, r6
  @p0 fmul r9 r8, r8
  @p0 st.shared r0, r9
  exit
";

    #[test]
    fn hints_off_is_byte_identical_to_allocate() {
        for config in [
            AllocConfig::baseline(),
            AllocConfig::two_level(3),
            AllocConfig::three_level(3, true),
        ] {
            let mut plain = parse_kernel(GUARDED_CHAIN).unwrap();
            let plain_stats = allocate(&mut plain, &config, &EnergyModel::paper()).unwrap();
            let mut off = parse_kernel(GUARDED_CHAIN).unwrap();
            let off_stats =
                allocate_with_hints(&mut off, &config, &EnergyModel::paper(), false).unwrap();
            assert_eq!(off, plain, "{config:?}");
            assert_eq!(off_stats, plain_stats, "{config:?}");
        }
    }

    #[test]
    fn hints_elide_mrf_writes_on_guarded_chain() {
        let config = AllocConfig::two_level(3);
        let model = EnergyModel::paper();
        let mut plain = parse_kernel(GUARDED_CHAIN).unwrap();
        allocate(&mut plain, &config, &model).unwrap();
        let mut hinted = parse_kernel(GUARDED_CHAIN).unwrap();
        let stats = allocate_with_hints(&mut hinted, &config, &model, true).unwrap();
        assert_eq!(stats.demoted, 0, "hinted placements must validate");

        let mrf_writes = |k: &Kernel| {
            let (_, _, mrf_only, dual) = write_level_counts(k);
            mrf_only + dual
        };
        assert!(
            mrf_writes(&hinted) < mrf_writes(&plain),
            "hints should elide MRF copies: hinted {} vs plain {}",
            mrf_writes(&hinted),
            mrf_writes(&plain)
        );
        // The hinted kernel still validates under the strand walk.
        validate_placements(&hinted, &config).unwrap();
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;
    use crate::config::AllocConfig;
    use rfh_isa::parse_kernel;
    use std::collections::HashMap;

    const KERNEL: &str = "
.kernel inc
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  iadd r2 r1, 1
  iadd r3 r2, r0
  st.global r0, r3
  ld.global r4 r0
  iadd r5 r4, 2
  st.global r0, r5
  exit
";

    fn run_incremental(
        text: &str,
        config: &AllocConfig,
        cache: &mut HashMap<String, StrandAllocation>,
    ) -> (Kernel, AllocStats, IncrementalStats) {
        let mut k = parse_kernel(text).unwrap();
        let model = EnergyModel::paper();
        let (stats, inc) = {
            let cache_ref = std::cell::RefCell::new(cache);
            allocate_incremental(
                &mut k,
                config,
                &model,
                &mut |fp| cache_ref.borrow().get(fp).cloned(),
                &mut |fp, sa| {
                    cache_ref.borrow_mut().insert(fp.to_string(), sa.clone());
                },
            )
            .expect("valid kernel")
        };
        (k, stats, inc)
    }

    #[test]
    fn cold_incremental_matches_monolithic() {
        for config in [
            AllocConfig::baseline(),
            AllocConfig::two_level_plain(3),
            AllocConfig::two_level(3),
            AllocConfig::three_level(3, true),
        ] {
            let mut mono = parse_kernel(KERNEL).unwrap();
            let mono_stats = allocate(&mut mono, &config, &EnergyModel::paper()).unwrap();
            let mut cache = HashMap::new();
            let (k, stats, inc) = run_incremental(KERNEL, &config, &mut cache);
            assert_eq!(k, mono, "{config:?}");
            assert_eq!(stats, mono_stats, "{config:?}");
            assert_eq!(inc.hits, 0, "cold cache cannot hit");
        }
    }

    #[test]
    fn warm_incremental_splices_every_strand() {
        let config = AllocConfig::three_level(3, true);
        let mut mono = parse_kernel(KERNEL).unwrap();
        let mono_stats = allocate(&mut mono, &config, &EnergyModel::paper()).unwrap();

        let mut cache = HashMap::new();
        let (_, _, cold) = run_incremental(KERNEL, &config, &mut cache);
        assert_eq!(cold.misses, cold.strands);
        let (k, stats, warm) = run_incremental(KERNEL, &config, &mut cache);
        assert_eq!(warm.hits, warm.strands, "warm run must be all hits");
        assert_eq!(warm.misses, 0);
        assert_eq!(k, mono, "spliced kernel is byte-identical");
        assert_eq!(stats, mono_stats);
    }

    #[test]
    fn single_strand_edit_recomputes_only_that_strand() {
        let config = AllocConfig::three_level(3, true);
        let mut cache = HashMap::new();
        let (_, _, cold) = run_incremental(KERNEL, &config, &mut cache);
        assert!(cold.strands >= 3, "kernel should have several strands");

        // Mutate an immediate inside the middle strand only.
        let edited = KERNEL.replace("iadd r2 r1, 1", "iadd r2 r1, 7");
        assert_ne!(edited, KERNEL);
        let (k, stats, inc) = run_incremental(&edited, &config, &mut cache);
        assert_eq!(inc.misses, 1, "only the edited strand recomputes");
        assert_eq!(inc.hits, inc.strands - 1);

        let mut mono = parse_kernel(&edited).unwrap();
        let mono_stats = allocate(&mut mono, &config, &EnergyModel::paper()).unwrap();
        assert_eq!(k, mono);
        assert_eq!(stats, mono_stats);
    }

    #[test]
    fn misshapen_cache_entry_is_recomputed_not_spliced() {
        let config = AllocConfig::two_level(3);
        let mut cache = HashMap::new();
        let (_, _, _) = run_incremental(KERNEL, &config, &mut cache);
        // Corrupt every entry's shape.
        for sa in cache.values_mut() {
            sa.placements.pop();
        }
        let (k, stats, inc) = run_incremental(KERNEL, &config, &mut cache);
        assert_eq!(inc.hits, 0, "misshapen entries must not splice");
        let mut mono = parse_kernel(KERNEL).unwrap();
        let mono_stats = allocate(&mut mono, &config, &EnergyModel::paper()).unwrap();
        assert_eq!(k, mono);
        assert_eq!(stats, mono_stats);
    }

    #[test]
    fn fingerprint_separates_config_and_model() {
        let canon = "strand-canon-v1\n";
        let a = strand_fingerprint(canon, &AllocConfig::two_level(3), &EnergyModel::paper());
        let b = strand_fingerprint(canon, &AllocConfig::two_level(4), &EnergyModel::paper());
        assert_ne!(a, b);
        let mut model = EnergyModel::paper();
        model.mrf_read_pj *= 2.0;
        let c = strand_fingerprint(canon, &AllocConfig::two_level(3), &model);
        assert_ne!(a, c);
    }
}

#[cfg(test)]
mod partial_range_tests {
    use super::*;
    use crate::config::AllocConfig;
    use rfh_isa::{parse_kernel, BlockId, InstrRef, ReadLoc, WriteLoc};

    /// Figure 8a: a value produced, read several times early, then read
    /// once much later. Under occupancy pressure the full range does not
    /// fit, but a partial range serves the early reads from the ORF while
    /// the late read falls back to the MRF copy.
    #[test]
    fn figure_8a_partial_range_allocation() {
        let mut text = String::from(
            ".kernel f8a\nBB0:\n  mov r1, %tid.x\n  iadd r2 r1, 1\n  iadd r3 r1, 2\n  mov r4, 7\n",
        );
        // Independent chains keeping the single ORF entry contended over
        // the long tail (they never read r1 and start after its early
        // reads).
        for i in 0..10 {
            text.push_str(&format!(
                "  iadd r4 r4, {i}\n  iadd r5 r4, 3\n  st.global r5, r4\n"
            ));
        }
        text.push_str("  iadd r6 r1, 3\n  st.global r2, r3\n  st.global r6, r6\n  exit\n");
        let mut k = parse_kernel(&text).unwrap();
        let cfg = AllocConfig {
            read_operands: false,
            ..AllocConfig::two_level_plain(1)
        };
        let cfg = AllocConfig {
            partial_ranges: true,
            ..cfg
        };
        let stats = allocate(&mut k, &cfg, &EnergyModel::paper()).unwrap();
        assert!(
            stats.orf_partial >= 1,
            "expected a partial allocation, got {stats:?}"
        );

        // Find r1's definition: it must write both levels, its early reads
        // hit the ORF, and its final read comes from the MRF.
        let def = InstrRef {
            block: BlockId::new(0),
            index: 0,
        };
        match k.instr(def).write_loc {
            WriteLoc::Orf { also_mrf, .. } => {
                assert!(also_mrf, "partial ranges always keep the MRF copy")
            }
            other => panic!("r1 should be partially ORF-allocated, got {other}"),
        }
        let early = k.instr(InstrRef {
            block: BlockId::new(0),
            index: 1,
        });
        assert!(
            matches!(early.read_locs[0], ReadLoc::Orf(_)),
            "early read served by ORF"
        );
        // The late read (iadd r6 r1, 3) is past the shortened range.
        let late_idx = k.blocks[0]
            .instrs
            .iter()
            .position(|i| i.dst.map(|d| d.reg.index()) == Some(6))
            .unwrap();
        let late = &k.blocks[0].instrs[late_idx];
        assert_eq!(
            late.read_locs[0],
            ReadLoc::Mrf,
            "late read falls back to the MRF"
        );
    }
}
