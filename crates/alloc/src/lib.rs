#![warn(missing_docs)]

//! # rfh-alloc — compile-time register file hierarchy allocation
//!
//! The core contribution of *A Compile-Time Managed Multi-Level Register
//! File Hierarchy* (Gebhart, Keckler, Dally — MICRO 2011): compiler
//! algorithms that place register value instances across a three-level
//! LRF / ORF / MRF hierarchy to minimize energy.
//!
//! Allocation differs from classical register allocation in three ways
//! (paper §4):
//!
//! 1. placement determines access *energy*, not latency — the machine is
//!    pipelined to tolerate MRF access latency, so a value in the MRF costs
//!    no performance, just picojoules;
//! 2. the upper levels are temporally shared across threads: the ORF and
//!    LRF are invalidated at *strand* boundaries, so allocation is per
//!    strand and live-out values must also be written to the MRF when they
//!    are produced (never written back later);
//! 3. the structures are tiny (1–8 entries), so the greedy priority is
//!    *energy saved per static instruction slot occupied* (Figure 7).
//!
//! Implemented algorithms:
//!
//! * the baseline greedy ORF allocator (Figure 7) with the energy-savings
//!   functions of Figures 6 and 9;
//! * **partial range allocation** (§4.3) — when a full range does not fit,
//!   serve a prefix of the reads from the ORF and the rest from the MRF;
//! * **read operand allocation** (§4.4) — values read but not written in a
//!   strand are deposited into the ORF by their first MRF read;
//! * **forward-branch handling** (§4.5) — hammock-written values are
//!   co-allocated to one ORF entry (Figure 10c) or fall back to the MRF
//!   when a merge is tainted by a live-in path (Figure 10a/b); merge groups
//!   come from `rfh-analysis`;
//! * the **three-level extension** (§4.6) — LRF allocation first (unified
//!   or split per operand slot), then the ORF; a value goes to the LRF *or*
//!   the ORF, never both, and shared-datapath consumers exclude a value
//!   from the LRF.
//!
//! ## Example
//!
//! ```
//! use rfh_alloc::{allocate, AllocConfig};
//! use rfh_energy::EnergyModel;
//!
//! let mut kernel = rfh_isa::parse_kernel("
//! .kernel saxpy
//! BB0:
//!   mov r0, %tid.x
//!   ld.global r1 r0
//!   ffma r2 r1, r1, r1
//!   st.global r0, r2
//!   exit
//! ").unwrap();
//!
//! let stats = allocate(&mut kernel, &AllocConfig::three_level(3, true), &EnergyModel::paper())
//!     .expect("structurally valid kernel");
//! assert!(stats.orf_values + stats.lrf_values > 0);
//! // Every placement is proven consistent before `allocate` returns, but
//! // it can also be re-checked explicitly:
//! rfh_alloc::validate_placements(&kernel, &AllocConfig::three_level(3, true)).unwrap();
//! ```
//!
//! `allocate` never panics: invalid kernels are rejected with
//! [`AllocError`], and an internal placement-validation failure demotes the
//! kernel to the MRF-only baseline (reported via [`AllocStats::demoted`])
//! instead of aborting.

pub mod config;
pub mod costs;
pub mod error;
pub mod interval;
pub mod pass;
pub mod validate;

pub use config::{AllocConfig, LrfMode};
pub use costs::Costs;
pub use error::AllocError;
pub use pass::{
    allocate, allocate_incremental, allocate_with_hints, strand_fingerprint, AllocStats,
    IncrementalStats, StrandAllocation,
};
pub use validate::validate_placements;
