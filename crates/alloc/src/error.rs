//! Allocator error taxonomy.
//!
//! `rfh-alloc` is panic-free: every public entry point returns a `Result`
//! and internal invariant failures degrade to an all-MRF placement (see
//! [`crate::allocate`]) rather than aborting. The error cases that *are*
//! reported to the caller are listed here.

use std::fmt;

use rfh_isa::IsaError;

/// An error from the allocation pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The input kernel failed [`rfh_isa::validate`]; allocation requires a
    /// structurally valid kernel.
    InvalidKernel(IsaError),
    /// The allocation configuration is internally inconsistent (for
    /// example, an LRF pass requested with [`crate::LrfMode::None`]).
    Config(String),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::InvalidKernel(e) => write!(f, "invalid input kernel: {e}"),
            AllocError::Config(msg) => write!(f, "invalid allocation config: {msg}"),
        }
    }
}

impl std::error::Error for AllocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AllocError::InvalidKernel(e) => Some(e),
            AllocError::Config(_) => None,
        }
    }
}

impl From<IsaError> for AllocError {
    fn from(e: IsaError) -> Self {
        AllocError::InvalidKernel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_wraps_isa_error() {
        let e = AllocError::from(IsaError::Validate {
            at: "BB0".into(),
            msg: "boom".into(),
        });
        let s = e.to_string();
        assert!(s.contains("invalid input kernel"), "{s}");
        assert!(s.contains("boom"), "{s}");
    }

    #[test]
    fn config_error_displays_message() {
        let e = AllocError::Config("LRF pass with LrfMode::None".into());
        assert!(e.to_string().contains("LrfMode::None"));
    }
}
