//! Allocation configuration: hierarchy shape and optimization toggles.

use std::fmt;

/// How the last result file is organized (paper §3.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum LrfMode {
    /// No LRF: a two-level ORF + MRF hierarchy.
    #[default]
    None,
    /// One LRF bank per lane (a single entry per thread).
    Unified,
    /// One LRF bank per operand slot (A, B, C) per lane; a value is only
    /// LRF-eligible if all its reads use one slot.
    Split,
}

impl LrfMode {
    /// Whether any LRF exists.
    pub const fn enabled(self) -> bool {
        !matches!(self, LrfMode::None)
    }
}

impl fmt::Display for LrfMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LrfMode::None => write!(f, "no LRF"),
            LrfMode::Unified => write!(f, "unified LRF"),
            LrfMode::Split => write!(f, "split LRF"),
        }
    }
}

/// Configuration of the allocation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocConfig {
    /// ORF entries per thread (0 disables the ORF; the paper sweeps 1–8).
    pub orf_entries: usize,
    /// LRF organization.
    pub lrf: LrfMode,
    /// Enable partial range allocation (§4.3).
    pub partial_ranges: bool,
    /// Enable read operand allocation (§4.4).
    pub read_operands: bool,
    /// §7 idealization: assume the LRF/ORF survive descheduling (strands
    /// end only at backward branches). Not realizable in hardware with
    /// temporally-shared upper levels; used by the limit study.
    pub ideal_no_deschedule_split: bool,
    /// Divide each candidate's energy savings by the static instruction
    /// slots it would occupy (Figure 7's priority). Disabling this ranks
    /// by raw savings and lets long-lived values hog entries; kept as an
    /// ablation knob.
    pub occupancy_priority: bool,
}

impl AllocConfig {
    /// The single-level baseline: everything in the MRF.
    pub const fn baseline() -> Self {
        AllocConfig {
            orf_entries: 0,
            lrf: LrfMode::None,
            partial_ranges: false,
            read_operands: false,
            ideal_no_deschedule_split: false,
            occupancy_priority: true,
        }
    }

    /// The §4.2 baseline algorithm alone: a two-level hierarchy without the
    /// partial-range / read-operand optimizations.
    pub const fn two_level_plain(orf_entries: usize) -> Self {
        AllocConfig {
            orf_entries,
            ..AllocConfig::baseline()
        }
    }

    /// A two-level hierarchy with all optimizations (the paper's "SW" bars).
    pub const fn two_level(orf_entries: usize) -> Self {
        AllocConfig {
            orf_entries,
            partial_ranges: true,
            read_operands: true,
            ..AllocConfig::baseline()
        }
    }

    /// A three-level hierarchy with all optimizations; `split` selects the
    /// split-LRF design ("SW LRF Split", the paper's most efficient
    /// configuration at 3 ORF entries).
    pub const fn three_level(orf_entries: usize, split: bool) -> Self {
        AllocConfig {
            orf_entries,
            lrf: if split {
                LrfMode::Split
            } else {
                LrfMode::Unified
            },
            partial_ranges: true,
            read_operands: true,
            ..AllocConfig::baseline()
        }
    }

    /// Whether this configuration has any upper level at all.
    pub const fn is_baseline(&self) -> bool {
        self.orf_entries == 0 && !self.lrf.enabled()
    }
}

impl Default for AllocConfig {
    fn default() -> Self {
        AllocConfig::three_level(3, true)
    }
}

impl fmt::Display for AllocConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ORF entries, {}", self.orf_entries, self.lrf)?;
        if self.partial_ranges {
            write!(f, ", partial ranges")?;
        }
        if self.read_operands {
            write!(f, ", read operands")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(AllocConfig::baseline().is_baseline());
        assert!(!AllocConfig::two_level(3).is_baseline());
        assert_eq!(AllocConfig::two_level(3).orf_entries, 3);
        assert!(!AllocConfig::two_level_plain(3).partial_ranges);
        assert_eq!(AllocConfig::three_level(3, true).lrf, LrfMode::Split);
        assert_eq!(AllocConfig::three_level(3, false).lrf, LrfMode::Unified);
        assert_eq!(AllocConfig::default(), AllocConfig::three_level(3, true));
    }

    #[test]
    fn lrf_mode_enabled() {
        assert!(!LrfMode::None.enabled());
        assert!(LrfMode::Unified.enabled());
        assert!(LrfMode::Split.enabled());
    }

    #[test]
    fn display_mentions_options() {
        let s = AllocConfig::three_level(3, true).to_string();
        assert!(s.contains("3 ORF"));
        assert!(s.contains("split"));
        assert!(s.contains("partial"));
    }
}
