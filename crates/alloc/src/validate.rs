//! Placement validation: proves that allocated kernels are executable.
//!
//! Walks each strand's (forward-edge-only) subgraph tracking the symbolic
//! contents of every ORF entry and LRF bank, and checks that:
//!
//! * every `ORF`/`LRF` read finds exactly the register word the annotation
//!   claims, on **all** paths reaching the read;
//! * entry indices are within the configured sizes;
//! * the LRF is only written by, and read from, the private datapath;
//! * split-LRF reads use the bank matching their operand slot;
//! * no value is expected to survive a strand boundary in an upper level.
//!
//! Guarded (predicated) writes may or may not execute. A guarded write
//! over an entry already holding the same register word preserves it (both
//! outcomes agree with the architectural register); any other guarded
//! write leaves a *conditional* entry, valid only for reads under the
//! exact same guard — the shape the last-use hint pass produces — and
//! invalidated when the guarding predicate is redefined.

use std::collections::HashMap;

use rfh_analysis::RegSet;
use rfh_isa::access::{AccessKind, AccessPlan, AccessSlot, Datapath, Place};
use rfh_isa::{InstrRef, Kernel, PredGuard, Reg, Width};

use crate::config::{AllocConfig, LrfMode};

/// Symbolic contents of one upper-level entry: which register word it
/// mirrors, and under which guard the mirroring holds (`None`: on every
/// lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    reg: Reg,
    guard: Option<PredGuard>,
}

/// Symbolic contents of the upper levels along one path.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    orf: Vec<Option<Entry>>,
    lrf: Vec<Option<Entry>>,
}

impl State {
    fn empty(config: &AllocConfig) -> State {
        let banks = match config.lrf {
            LrfMode::None => 0,
            LrfMode::Unified => 1,
            LrfMode::Split => 3,
        };
        State {
            orf: vec![None; config.orf_entries],
            lrf: vec![None; banks],
        }
    }

    fn meet(&mut self, other: &State) {
        for (a, b) in self.orf.iter_mut().zip(&other.orf) {
            if *a != *b {
                *a = None;
            }
        }
        for (a, b) in self.lrf.iter_mut().zip(&other.lrf) {
            if *a != *b {
                *a = None;
            }
        }
    }
}

/// Whether an entry's symbolic contents serve a read of `reg` on an
/// instruction guarded by `guard`: the entry must mirror the same word,
/// unconditionally or under the exact same guard (same predicate, same
/// polarity — then the read only executes on lanes the write reached).
fn entry_serves(entry: Option<Entry>, reg: Reg, guard: Option<PredGuard>) -> bool {
    entry.is_some_and(|en| en.reg == reg && (en.guard.is_none() || en.guard == guard))
}

/// Splits a kernel into strands using the `ends_strand` bits already on the
/// instructions (set by `rfh-analysis::strand::mark_strands`).
fn segments(kernel: &Kernel) -> Vec<Vec<InstrRef>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for (at, i) in kernel.iter_instrs() {
        cur.push(at);
        if i.ends_strand {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Whole-kernel check that no MRF read can observe a *stale* MRF copy —
/// i.e. a register whose latest definition on some path was written only
/// to an upper level. Forward may-be-stale dataflow over blocks.
fn validate_mrf_freshness(kernel: &Kernel, plans: &[Vec<AccessPlan>]) -> Result<(), String> {
    let n = kernel.blocks.len();
    let num_regs = kernel.num_regs();
    let mut stale_in = vec![RegSet::new(num_regs); n];
    let preds = kernel.predecessors();

    let transfer = |stale: &mut RegSet,
                    b: &rfh_isa::BasicBlock,
                    check: bool|
     -> Result<(), String> {
        for (idx, (i, plan)) in b.instrs.iter().zip(&plans[b.id.index()]).enumerate() {
            if check {
                // An MRF-served read (including the MRF half of a fill) of
                // a may-be-stale register is the bug this pass exists for.
                for a in plan.reads() {
                    if a.place == Place::Mrf && stale.contains(a.reg) {
                        return Err(format!(
                            "{}[{idx}] `{i}`: MRF read of {} may observe a stale copy                                  (an earlier definition skipped the MRF write)",
                            b.id, a.reg
                        ));
                    }
                }
            }
            let writes_mrf = plan.writes_mrf();
            for r in plan.written_words() {
                if writes_mrf {
                    if i.guard.is_none() {
                        stale.remove(*r);
                    }
                    // A guarded MRF write leaves the staleness as-is.
                } else {
                    stale.insert(*r);
                }
            }
        }
        Ok(())
    };

    // Fixpoint (may-be-stale is a union/forward problem).
    let mut changed = true;
    while changed {
        changed = false;
        for b in &kernel.blocks {
            let mut inn = RegSet::new(num_regs);
            for p in &preds[b.id.index()] {
                let mut out = stale_in[p.index()].clone();
                transfer(&mut out, kernel.block(*p), false)?;
                inn.union_with(&out);
            }
            if inn != stale_in[b.id.index()] {
                stale_in[b.id.index()] = inn;
                changed = true;
            }
        }
    }
    // Final checking pass.
    for b in &kernel.blocks {
        let mut stale = stale_in[b.id.index()].clone();
        transfer(&mut stale, b, true)?;
    }
    Ok(())
}

/// Checks every placement annotation in `kernel` for consistency.
///
/// Two passes: a per-strand symbolic walk proving every upper-level read
/// finds the value its annotation names, and a whole-kernel freshness
/// check proving no MRF read can observe a register whose MRF copy was
/// skipped (the freshness dataflow).
///
/// # Errors
///
/// Returns a human-readable description of the first inconsistency found.
pub fn validate_placements(kernel: &Kernel, config: &AllocConfig) -> Result<(), String> {
    // Resolve every instruction's access plan once up front; the freshness
    // fixpoint re-walks blocks many times and the strand walk reuses them.
    let plans: Vec<Vec<AccessPlan>> = kernel
        .blocks
        .iter()
        .map(|b| b.instrs.iter().map(AccessPlan::resolve).collect())
        .collect();
    validate_mrf_freshness(kernel, &plans)?;
    let preds = kernel.predecessors();
    for strand in segments(kernel) {
        let pos_of: HashMap<InstrRef, usize> =
            strand.iter().enumerate().map(|(i, r)| (*r, i)).collect();
        let mut out_states: Vec<State> = Vec::with_capacity(strand.len());

        for (pos, at) in strand.iter().enumerate() {
            let instr = kernel.instr(*at);
            let plan = &plans[at.block.index()][at.index];
            let loc = format!("{} `{}`", at, instr);

            // ---- in-state ----
            let mut state: Option<State> = None;
            let meet_in = |state: &mut Option<State>, s: &State| match state {
                None => *state = Some(s.clone()),
                Some(cur) => cur.meet(s),
            };
            let mut external = false;
            if at.index > 0 {
                let prev = InstrRef {
                    block: at.block,
                    index: at.index - 1,
                };
                match pos_of.get(&prev) {
                    Some(p) => meet_in(&mut state, &out_states[*p]),
                    None => external = true,
                }
            } else {
                for p in &preds[at.block.index()] {
                    let pb = kernel.block(*p);
                    let term = InstrRef {
                        block: *p,
                        index: pb.instrs.len() - 1,
                    };
                    match pos_of.get(&term) {
                        // Later positions are the strand's own closing
                        // backedge: inter-strand, upper levels invalid.
                        Some(t) if *t < pos => meet_in(&mut state, &out_states[*t]),
                        _ => external = true,
                    }
                }
            }
            let mut state = match (state, external) {
                (Some(s), false) => s,
                (Some(mut s), true) => {
                    s.meet(&State::empty(config));
                    s
                }
                (None, _) => State::empty(config),
            };

            // ---- reads ----
            let mut fills: Vec<(usize, Reg)> = Vec::new();
            for a in plan
                .accesses()
                .iter()
                .filter(|a| a.kind != AccessKind::Write)
            {
                let reg = a.reg;
                match (a.kind, a.place) {
                    (AccessKind::Fill, Place::Orf(e)) => {
                        let e = e as usize;
                        if e >= config.orf_entries {
                            return Err(format!("{loc}: fill entry ORF{e} out of range"));
                        }
                        fills.push((e, reg));
                    }
                    (_, Place::Mrf) | (AccessKind::Fill, _) => {}
                    (_, Place::Orf(e)) => {
                        let e = e as usize;
                        if e >= config.orf_entries {
                            return Err(format!("{loc}: read entry ORF{e} out of range"));
                        }
                        if !entry_serves(state.orf[e], reg, instr.guard) {
                            return Err(format!(
                                "{loc}: ORF{e} holds {:?}, expected {reg} under {:?}",
                                state.orf[e], instr.guard
                            ));
                        }
                    }
                    (_, Place::Lrf(bank)) => {
                        if !config.lrf.enabled() {
                            return Err(format!("{loc}: LRF read but no LRF configured"));
                        }
                        if a.datapath == Datapath::Shared {
                            return Err(format!("{loc}: shared datapath cannot read the LRF"));
                        }
                        let AccessSlot::Src(i) = a.slot else {
                            continue;
                        };
                        let i = i as usize;
                        let b = match (config.lrf, bank) {
                            (LrfMode::Unified, None) => 0,
                            (LrfMode::Split, Some(s)) => {
                                if s.index() != i {
                                    return Err(format!(
                                        "{loc}: split LRF read from bank {s} in slot {i}"
                                    ));
                                }
                                s.index()
                            }
                            _ => {
                                return Err(format!(
                                    "{loc}: LRF bank annotation does not match {} mode",
                                    config.lrf
                                ))
                            }
                        };
                        if !entry_serves(state.lrf[b], reg, instr.guard) {
                            return Err(format!(
                                "{loc}: LRF bank {b} holds {:?}, expected {reg} under {:?}",
                                state.lrf[b], instr.guard
                            ));
                        }
                    }
                }
            }
            for (e, reg) in fills {
                state.orf[e] = Some(Entry { reg, guard: None });
            }

            // ---- defs ----
            if !plan.written_words().is_empty() {
                // Any redefinition (even a guarded one, conservatively)
                // invalidates stale copies in entries it does not target;
                // the targeted entries are handled by `write` below.
                let orf_base = plan
                    .writes()
                    .find_map(|a| a.place.orf_entry().map(|e| e as usize));
                let words = plan.written_words().len();
                let target_lrf: Option<usize> =
                    plan.writes().find_map(|a| match (config.lrf, a.place) {
                        (LrfMode::Unified, Place::Lrf(None)) => Some(0),
                        (LrfMode::Split, Place::Lrf(Some(s))) => Some(s.index()),
                        _ => None,
                    });
                for r in plan.written_words() {
                    for (e, slot) in state.orf.iter_mut().enumerate() {
                        let targeted = orf_base.is_some_and(|base| e >= base && e < base + words);
                        if !targeted && slot.is_some_and(|en| en.reg == *r) {
                            *slot = None;
                        }
                    }
                    for (b, slot) in state.lrf.iter_mut().enumerate() {
                        if target_lrf != Some(b) && slot.is_some_and(|en| en.reg == *r) {
                            *slot = None;
                        }
                    }
                }
                let guard = instr.guard;
                let write = |slot: &mut Option<Entry>, reg: Reg| match guard {
                    None => *slot = Some(Entry { reg, guard: None }),
                    Some(g) => match *slot {
                        // A guarded write of the word an unconditional entry
                        // already mirrors preserves it: either outcome still
                        // matches the architectural register.
                        Some(en) if en.reg == reg && en.guard.is_none() => {}
                        // Otherwise the entry is valid only under this guard.
                        _ => {
                            *slot = Some(Entry {
                                reg,
                                guard: Some(g),
                            })
                        }
                    },
                };
                if let Some(e) = orf_base {
                    let slots = words;
                    if e + slots > config.orf_entries {
                        return Err(format!("{loc}: write entry ORF{e} (+{slots}) out of range"));
                    }
                    for a in plan.writes() {
                        if let Place::Orf(entry) = a.place {
                            write(&mut state.orf[entry as usize], a.reg);
                        }
                    }
                }
                for a in plan.writes() {
                    let Place::Lrf(bank) = a.place else { continue };
                    // Per-value checks run once, on the low word's access.
                    if a.slot != AccessSlot::DstWord(0) {
                        continue;
                    }
                    if !config.lrf.enabled() {
                        return Err(format!("{loc}: LRF write but no LRF configured"));
                    }
                    if a.datapath == Datapath::Shared {
                        return Err(format!("{loc}: shared datapath cannot write the LRF"));
                    }
                    if a.width == Width::W64 {
                        return Err(format!("{loc}: 64-bit values cannot live in the LRF"));
                    }
                    let b = match (config.lrf, bank) {
                        (LrfMode::Unified, None) => 0,
                        (LrfMode::Split, Some(s)) => s.index(),
                        _ => {
                            return Err(format!(
                                "{loc}: LRF bank annotation does not match {} mode",
                                config.lrf
                            ))
                        }
                    };
                    write(&mut state.lrf[b], a.reg);
                }
            } else if plan.orphan_upper_write() {
                return Err(format!(
                    "{loc}: upper-level write on an instruction with no destination"
                ));
            }

            // Redefining a predicate invalidates every entry whose validity
            // is conditional on it.
            if let Some(p) = instr.pdst {
                for slot in state.orf.iter_mut().chain(state.lrf.iter_mut()) {
                    if slot.is_some_and(|en| en.guard.is_some_and(|g| g.reg == p)) {
                        *slot = None;
                    }
                }
            }

            out_states.push(state);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_isa::{parse_kernel, BlockId, ReadLoc, Slot, WriteLoc};

    fn at(b: u32, i: usize) -> InstrRef {
        InstrRef {
            block: BlockId::new(b),
            index: i,
        }
    }

    fn two_level() -> AllocConfig {
        AllocConfig::two_level(3)
    }

    #[test]
    fn baseline_kernel_validates() {
        let k = parse_kernel(".kernel b\nBB0:\n  iadd r1 r0, 1\n  exit\n").unwrap();
        validate_placements(&k, &two_level()).unwrap();
        validate_placements(&k, &AllocConfig::baseline()).unwrap();
    }

    #[test]
    fn consistent_orf_pair_validates() {
        let mut k = parse_kernel(
            ".kernel ok\nBB0:\n  iadd r1 r0, 1\n  iadd r2 r1, 1\n  st.global r0, r2\n  exit\n",
        )
        .unwrap();
        k.instr_mut(at(0, 0)).write_loc = WriteLoc::Orf {
            entry: 1,
            also_mrf: false,
        };
        k.instr_mut(at(0, 1)).read_locs[0] = ReadLoc::Orf(1);
        validate_placements(&k, &two_level()).unwrap();
    }

    #[test]
    fn rejects_read_of_unwritten_entry() {
        let mut k = parse_kernel(".kernel bad\nBB0:\n  iadd r1 r0, 1\n  exit\n").unwrap();
        k.instr_mut(at(0, 0)).read_locs[0] = ReadLoc::Orf(0);
        let e = validate_placements(&k, &two_level()).unwrap_err();
        assert!(e.contains("ORF0"), "{e}");
    }

    #[test]
    fn rejects_wrong_register_in_entry() {
        let mut k =
            parse_kernel(".kernel bad\nBB0:\n  iadd r1 r0, 1\n  iadd r3 r2, 1\n  exit\n").unwrap();
        k.instr_mut(at(0, 0)).write_loc = WriteLoc::Orf {
            entry: 0,
            also_mrf: false,
        };
        k.instr_mut(at(0, 1)).read_locs[0] = ReadLoc::Orf(0); // reads r2, entry holds r1
        assert!(validate_placements(&k, &two_level()).is_err());
    }

    #[test]
    fn rejects_cross_strand_orf_value() {
        let mut k = parse_kernel(
            "
.kernel cross
BB0:
  iadd r1 r0, 1
  ld.global r2 r0
  iadd r3 r2, r1
  exit
",
        )
        .unwrap();
        // Re-mark strands: the consumer of r2 starts a new strand.
        rfh_analysis::strand::mark_strands(&mut k);
        k.instr_mut(at(0, 0)).write_loc = WriteLoc::Orf {
            entry: 0,
            also_mrf: false,
        };
        k.instr_mut(at(0, 2)).read_locs[1] = ReadLoc::Orf(0); // crosses the boundary
        assert!(validate_placements(&k, &two_level()).is_err());
    }

    #[test]
    fn rejects_entry_out_of_range() {
        let mut k = parse_kernel(".kernel r\nBB0:\n  iadd r1 r0, 1\n  exit\n").unwrap();
        k.instr_mut(at(0, 0)).write_loc = WriteLoc::Orf {
            entry: 7,
            also_mrf: false,
        };
        assert!(validate_placements(&k, &two_level()).is_err());
    }

    #[test]
    fn rejects_shared_lrf_access() {
        let mut k = parse_kernel(".kernel s\nBB0:\n  ld.global r1 r0\n  exit\n").unwrap();
        k.instr_mut(at(0, 0)).write_loc = WriteLoc::Lrf {
            bank: None,
            also_mrf: false,
        };
        let cfg = AllocConfig::three_level(3, false);
        let e = validate_placements(&k, &cfg).unwrap_err();
        assert!(e.contains("shared datapath"), "{e}");
    }

    #[test]
    fn rejects_split_bank_slot_mismatch() {
        let mut k =
            parse_kernel(".kernel sb\nBB0:\n  iadd r1 r0, 1\n  iadd r2 r3, r1\n  exit\n").unwrap();
        k.instr_mut(at(0, 0)).write_loc = WriteLoc::Lrf {
            bank: Some(Slot::B),
            also_mrf: false,
        };
        // r1 is read in slot B of the second instruction: correct bank…
        k.instr_mut(at(0, 1)).read_locs[1] = ReadLoc::Lrf(Some(Slot::B));
        let cfg = AllocConfig::three_level(3, true);
        validate_placements(&k, &cfg).unwrap();
        // …but claiming bank A for a slot-B read must fail.
        k.instr_mut(at(0, 1)).read_locs[1] = ReadLoc::Lrf(Some(Slot::A));
        assert!(validate_placements(&k, &cfg).is_err());
    }

    #[test]
    fn hammock_same_entry_on_both_sides_validates() {
        // Figure 10c as explicit placements.
        let mut k = parse_kernel(
            "
.kernel h
BB0:
  setp.lt p0 r0, 16
  @p0 bra BB2
BB1:
  iadd r1 r0, 1
  bra BB3
BB2:
  iadd r1 r0, 2
BB3:
  iadd r2 r1, 1
  exit
",
        )
        .unwrap();
        k.instr_mut(at(1, 0)).write_loc = WriteLoc::Orf {
            entry: 2,
            also_mrf: false,
        };
        k.instr_mut(at(2, 0)).write_loc = WriteLoc::Orf {
            entry: 2,
            also_mrf: false,
        };
        k.instr_mut(at(3, 0)).read_locs[0] = ReadLoc::Orf(2);
        validate_placements(&k, &two_level()).unwrap();
        // Different entries on the two sides must fail.
        k.instr_mut(at(2, 0)).write_loc = WriteLoc::Orf {
            entry: 1,
            also_mrf: false,
        };
        assert!(validate_placements(&k, &two_level()).is_err());
    }

    #[test]
    fn fill_makes_entry_readable() {
        let mut k = parse_kernel(
            ".kernel f\nBB0:\n  iadd r1 r0, 1\n  iadd r2 r0, 2\n  iadd r3 r0, 3\n  exit\n",
        )
        .unwrap();
        k.instr_mut(at(0, 0)).read_locs[0] = ReadLoc::MrfFillOrf(0);
        k.instr_mut(at(0, 1)).read_locs[0] = ReadLoc::Orf(0);
        k.instr_mut(at(0, 2)).read_locs[0] = ReadLoc::Orf(0);
        validate_placements(&k, &two_level()).unwrap();
    }

    #[test]
    fn redefinition_invalidates_stale_entry() {
        let mut k = parse_kernel(
            ".kernel st\nBB0:\n  iadd r1 r0, 1\n  mov r1, 7\n  iadd r2 r1, 1\n  exit\n",
        )
        .unwrap();
        k.instr_mut(at(0, 0)).write_loc = WriteLoc::Orf {
            entry: 0,
            also_mrf: false,
        };
        k.instr_mut(at(0, 2)).read_locs[0] = ReadLoc::Orf(0); // stale after mov
        assert!(validate_placements(&k, &two_level()).is_err());
    }

    #[test]
    fn wide_write_occupies_two_entries() {
        let mut k =
            parse_kernel(".kernel w\nBB0:\n  ld.shared r4.w64 r0\n  iadd r6 r5, 1\n  exit\n")
                .unwrap();
        k.instr_mut(at(0, 0)).write_loc = WriteLoc::Orf {
            entry: 1,
            also_mrf: false,
        };
        k.instr_mut(at(0, 1)).read_locs[0] = ReadLoc::Orf(2); // high half
        validate_placements(&k, &two_level()).unwrap();
        // Entry 2 would spill past a 3-entry ORF with a wide write.
        k.instr_mut(at(0, 0)).write_loc = WriteLoc::Orf {
            entry: 2,
            also_mrf: false,
        };
        assert!(validate_placements(&k, &two_level()).is_err());
    }
}

#[cfg(test)]
mod freshness_tests {
    use super::*;
    use rfh_isa::{parse_kernel, WriteLoc};

    /// Regression: a loop-carried value written only to the ORF leaves the
    /// MRF stale for the next iteration's MRF read.
    #[test]
    fn stale_mrf_copy_across_backedge_rejected() {
        let mut k = parse_kernel(
            "
.kernel loopy
BB0:
  mov r5, 0.0f
BB1:
  fmul r8 r5, r5
  fadd r5 r8, 1.0f
  iadd r7 r7, 1
  setp.lt p0 r7, 4
  @p0 bra BB1
BB2:
  st.global r0, r5
  exit
",
        )
        .unwrap();
        rfh_analysis::strand::mark_strands(&mut k);
        let cfg = AllocConfig::two_level(3);
        // fadd r5 written only to the ORF: the next iteration's MRF read
        // of r5 observes the stale init value.
        let at = InstrRef {
            block: rfh_isa::BlockId::new(1),
            index: 1,
        };
        k.instr_mut(at).write_loc = WriteLoc::Orf {
            entry: 0,
            also_mrf: false,
        };
        let e = validate_placements(&k, &cfg).unwrap_err();
        assert!(e.contains("stale"), "{e}");
        // With the dual write it is fine.
        k.instr_mut(at).write_loc = WriteLoc::Orf {
            entry: 0,
            also_mrf: true,
        };
        validate_placements(&k, &cfg).unwrap();
    }
}
