//! Per-access energy costs and the savings functions of Figures 6 and 9.

use rfh_energy::EnergyModel;
use rfh_isa::Unit;

use rfh_analysis::ReadRef;

/// Flattened per-access costs (access + wire, pJ per 128-bit access) for a
/// fixed ORF size, as seen by the allocator's savings functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Costs {
    /// MRF read delivered to the private datapath.
    pub mrf_read_private: f64,
    /// MRF read delivered to the shared datapath.
    pub mrf_read_shared: f64,
    /// MRF write.
    pub mrf_write: f64,
    /// ORF read by the private datapath.
    pub orf_read_private: f64,
    /// ORF read by the shared datapath.
    pub orf_read_shared: f64,
    /// ORF write from the private datapath.
    pub orf_write_private: f64,
    /// ORF write from the shared datapath.
    pub orf_write_shared: f64,
    /// LRF read (private only).
    pub lrf_read: f64,
    /// LRF write (private only).
    pub lrf_write: f64,
}

impl Costs {
    /// Derives costs from an energy model for a hierarchy with
    /// `orf_entries` entries per thread (clamped to at least 1 for lookup,
    /// since a 0-entry configuration never computes ORF savings).
    pub fn from_model(model: &EnergyModel, orf_entries: usize) -> Costs {
        let orf = model.orf_access(orf_entries.max(1));
        Costs {
            mrf_read_private: model.mrf_read_pj + model.wire_128(model.mrf_to_private_mm),
            mrf_read_shared: model.mrf_read_pj + model.wire_128(model.mrf_to_shared_mm),
            mrf_write: model.mrf_write_pj + model.wire_128(model.mrf_to_private_mm),
            orf_read_private: orf.read_pj + model.wire_128(model.orf_to_private_mm),
            orf_read_shared: orf.read_pj + model.wire_128(model.orf_to_shared_mm),
            orf_write_private: orf.write_pj + model.wire_128(model.orf_to_private_mm),
            orf_write_shared: orf.write_pj + model.wire_128(model.orf_to_shared_mm),
            lrf_read: model.lrf_read_pj + model.wire_128(model.lrf_to_private_mm),
            lrf_write: model.lrf_write_pj + model.wire_128(model.lrf_to_private_mm),
        }
    }

    /// Cost of one MRF read consumed by `unit`.
    pub fn mrf_read(&self, unit: Unit) -> f64 {
        if unit.is_shared() {
            self.mrf_read_shared
        } else {
            self.mrf_read_private
        }
    }

    /// Cost of one ORF read consumed by `unit`.
    pub fn orf_read(&self, unit: Unit) -> f64 {
        if unit.is_shared() {
            self.orf_read_shared
        } else {
            self.orf_read_private
        }
    }

    /// Cost of one ORF write produced by `unit`.
    pub fn orf_write(&self, unit: Unit) -> f64 {
        if unit.is_shared() {
            self.orf_write_shared
        } else {
            self.orf_write_private
        }
    }

    /// Figure 6: energy saved by allocating a produced value to the ORF.
    ///
    /// `reads` are the covered reads (each is one 32-bit operand access, so
    /// reads of 64-bit values appear once per half and are *not* scaled);
    /// `writes` is the number of producing definitions (more than one for a
    /// merge group, each paying an ORF write); `producer_shared` marks
    /// values produced on the shared datapath; `live_out` values must also
    /// be written to the MRF, so the MRF-write saving only applies to
    /// values dying in the strand. `width_slots` scales the *write* costs:
    /// a 64-bit value writes two entries.
    pub fn orf_write_savings(
        &self,
        reads: &[ReadRef],
        writes: usize,
        producer_shared: bool,
        live_out: bool,
        width_slots: usize,
    ) -> f64 {
        let w = width_slots as f64;
        let read_gain: f64 = reads
            .iter()
            .map(|r| self.mrf_read(r.unit) - self.orf_read(r.unit))
            .sum();
        let unit = if producer_shared {
            Unit::Mem
        } else {
            Unit::Alu
        };
        let mut savings = read_gain - writes as f64 * self.orf_write(unit) * w;
        if !live_out {
            savings += writes as f64 * self.mrf_write * w;
        }
        savings
    }

    /// Figure 6 with LRF energies: saving of allocating a produced value to
    /// the LRF (private datapath only, 32-bit only).
    pub fn lrf_write_savings(&self, reads: &[ReadRef], writes: usize, live_out: bool) -> f64 {
        let read_gain: f64 = reads
            .iter()
            .map(|r| self.mrf_read(r.unit) - self.lrf_read)
            .sum();
        let mut savings = read_gain - writes as f64 * self.lrf_write;
        if !live_out {
            savings += writes as f64 * self.mrf_write;
        }
        savings
    }

    /// Figure 9: energy saved by allocating a *read operand* to the ORF.
    /// The first read still comes from the MRF (and fills the ORF entry),
    /// so only reads of **later instructions** gain — operands of the same
    /// instruction are read simultaneously and cannot see the fill — and
    /// the fill write is pure overhead.
    pub fn read_operand_savings(&self, reads: &[ReadRef]) -> f64 {
        let Some(first) = reads.first() else {
            return f64::NEG_INFINITY;
        };
        let gain: f64 = reads
            .iter()
            .filter(|r| r.pos > first.pos)
            .map(|r| self.mrf_read(r.unit) - self.orf_read(r.unit))
            .sum();
        if gain == 0.0 {
            return f64::NEG_INFINITY;
        }
        gain - self.orf_write_private
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_isa::{BlockId, InstrRef, Reg, Slot};

    fn read(pos: usize, unit: Unit) -> ReadRef {
        ReadRef {
            at: InstrRef {
                block: BlockId::new(0),
                index: pos,
            },
            slot: Slot::A,
            reg: Reg::new(0),
            pos,
            unit,
        }
    }

    fn costs() -> Costs {
        Costs::from_model(&EnergyModel::paper(), 3)
    }

    #[test]
    fn reads_cost_less_from_upper_levels() {
        let c = costs();
        assert!(c.orf_read_private < c.mrf_read_private);
        assert!(c.lrf_read < c.orf_read_private);
        assert!(c.orf_read_shared < c.mrf_read_shared);
        assert!(
            c.orf_read_shared > c.orf_read_private,
            "longer wire to shared units"
        );
    }

    #[test]
    fn single_read_dying_value_saves_energy() {
        // One read + death in strand: saves an MRF read and an MRF write,
        // pays an ORF write — clearly profitable (the dominant GPU case).
        let c = costs();
        let r = [read(1, Unit::Alu)];
        assert!(c.orf_write_savings(&r, 1, false, false, 1) > 0.0);
    }

    #[test]
    fn live_out_single_read_is_marginal() {
        let c = costs();
        let r = [read(1, Unit::Alu)];
        let dying = c.orf_write_savings(&r, 1, false, false, 1);
        let live = c.orf_write_savings(&r, 1, false, true, 1);
        assert!(live < dying);
        assert!((dying - live - c.mrf_write).abs() < 1e-9);
    }

    #[test]
    fn more_reads_save_more() {
        let c = costs();
        let r1 = [read(1, Unit::Alu)];
        let r3 = [read(1, Unit::Alu), read(2, Unit::Alu), read(3, Unit::Alu)];
        assert!(
            c.orf_write_savings(&r3, 1, false, true, 1)
                > c.orf_write_savings(&r1, 1, false, true, 1)
        );
    }

    #[test]
    fn merge_groups_pay_per_definition() {
        // For live-out values a second definition is pure cost (another ORF
        // write with no offsetting MRF-write saving); for dying values each
        // extra definition also elides an MRF write, so it helps.
        let c = costs();
        let r = [read(2, Unit::Alu)];
        let one_live = c.orf_write_savings(&r, 1, false, true, 1);
        let two_live = c.orf_write_savings(&r, 2, false, true, 1);
        assert!(
            two_live < one_live,
            "a second definition costs another ORF write"
        );
        assert!((one_live - two_live - c.orf_write_private).abs() < 1e-9);
    }

    #[test]
    fn wide_values_scale_write_costs_only() {
        let c = costs();
        let r = [read(1, Unit::Alu)];
        let narrow = c.orf_write_savings(&r, 1, false, false, 1);
        let wide = c.orf_write_savings(&r, 1, false, false, 2);
        let expected = narrow - c.orf_write_private + c.mrf_write;
        assert!(
            (wide - expected).abs() < 1e-9,
            "one extra entry write, one extra MRF write saved"
        );
    }

    #[test]
    fn lrf_beats_orf_for_private_reads() {
        let c = costs();
        let r = [read(1, Unit::Alu)];
        assert!(c.lrf_write_savings(&r, 1, false) > c.orf_write_savings(&r, 1, false, false, 1));
    }

    #[test]
    fn read_operand_needs_two_reads() {
        let c = costs();
        assert_eq!(
            c.read_operand_savings(&[read(0, Unit::Alu)]),
            f64::NEG_INFINITY
        );
        let many: Vec<ReadRef> = (0..8).map(|i| read(i, Unit::Alu)).collect();
        assert!(
            c.read_operand_savings(&many) > 0.0,
            "Figure 8b: 8 reads clearly profit"
        );
    }

    #[test]
    fn read_operand_savings_grow_with_reads() {
        // (N−1)·(MRFr − ORFr) − ORFw: profitable from two reads with the
        // paper's numbers, and each further read adds one read's gain.
        let c = costs();
        let two = [read(0, Unit::Alu), read(1, Unit::Alu)];
        let three = [read(0, Unit::Alu), read(1, Unit::Alu), read(2, Unit::Alu)];
        let s2 = c.read_operand_savings(&two);
        let s3 = c.read_operand_savings(&three);
        assert!(s2 > 0.0);
        assert!((s3 - s2 - (c.mrf_read_private - c.orf_read_private)).abs() < 1e-9);
    }
}
