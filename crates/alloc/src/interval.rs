//! ORF/LRF entry occupancy tracking over static instruction slots.
//!
//! The greedy allocator of Figure 7 asks each physical entry whether it is
//! `available(begin, end)` over a range of static instruction positions
//! within the strand and allocates the value into the first free entry.

/// Occupancy intervals for a small register file level.
///
/// Positions are strand-relative static instruction indices; intervals are
/// inclusive on both ends (a value occupies its entry from its producing
/// instruction through its last covered read).
#[derive(Debug, Clone)]
pub struct Occupancy {
    entries: Vec<Vec<(usize, usize)>>,
}

impl Occupancy {
    /// Creates an occupancy tracker for `entries` physical entries.
    pub fn new(entries: usize) -> Self {
        Occupancy {
            entries: vec![Vec::new(); entries],
        }
    }

    /// Number of physical entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tracker has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether entry `e` is free over the inclusive range `[begin, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range or `begin > end`.
    pub fn available(&self, e: usize, begin: usize, end: usize) -> bool {
        assert!(begin <= end, "inverted interval");
        self.entries[e].iter().all(|&(b, en)| end < b || en < begin)
    }

    /// Marks entry `e` occupied over `[begin, end]`.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps an existing allocation (allocator bug).
    pub fn allocate(&mut self, e: usize, begin: usize, end: usize) {
        assert!(
            self.available(e, begin, end),
            "overlapping allocation in entry {e}"
        );
        self.entries[e].push((begin, end));
    }

    /// Finds the first base entry such that `width` consecutive entries are
    /// all free over `[begin, end]` (width 2 serves 64-bit values).
    pub fn find_free(&self, begin: usize, end: usize, width: usize) -> Option<usize> {
        if width == 0 || width > self.entries.len() {
            return None;
        }
        (0..=self.entries.len() - width)
            .find(|&base| (0..width).all(|i| self.available(base + i, begin, end)))
    }

    /// Marks `width` consecutive entries starting at `base` occupied.
    ///
    /// # Panics
    ///
    /// Panics on overlap, like [`Occupancy::allocate`].
    pub fn allocate_wide(&mut self, base: usize, begin: usize, end: usize, width: usize) {
        for i in 0..width {
            self.allocate(base + i, begin, end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_entries_are_available() {
        let o = Occupancy::new(3);
        assert_eq!(o.len(), 3);
        assert!(o.available(0, 0, 10));
        assert_eq!(o.find_free(0, 10, 1), Some(0));
    }

    #[test]
    fn allocation_blocks_overlaps_only() {
        let mut o = Occupancy::new(1);
        o.allocate(0, 3, 6);
        assert!(!o.available(0, 0, 3), "inclusive endpoints overlap");
        assert!(!o.available(0, 6, 9));
        assert!(!o.available(0, 4, 5));
        assert!(o.available(0, 0, 2));
        assert!(o.available(0, 7, 9));
    }

    #[test]
    fn find_free_skips_busy_entries() {
        let mut o = Occupancy::new(3);
        o.allocate(0, 0, 5);
        o.allocate(1, 2, 4);
        assert_eq!(o.find_free(3, 4, 1), Some(2));
        assert_eq!(o.find_free(6, 8, 1), Some(0));
    }

    #[test]
    fn wide_allocation_needs_adjacent_entries() {
        let mut o = Occupancy::new(3);
        o.allocate(1, 0, 9);
        assert_eq!(
            o.find_free(0, 5, 2),
            None,
            "entries 0-1 and 1-2 both blocked"
        );
        let mut o2 = Occupancy::new(3);
        o2.allocate(0, 0, 9);
        assert_eq!(o2.find_free(0, 5, 2), Some(1));
        o2.allocate_wide(1, 0, 5, 2);
        assert!(!o2.available(2, 3, 3));
    }

    #[test]
    fn zero_or_oversized_width_finds_nothing() {
        let o = Occupancy::new(2);
        assert_eq!(o.find_free(0, 1, 0), None);
        assert_eq!(o.find_free(0, 1, 3), None);
    }

    #[test]
    #[should_panic]
    fn double_allocation_panics() {
        let mut o = Occupancy::new(1);
        o.allocate(0, 0, 5);
        o.allocate(0, 5, 8);
    }

    #[test]
    #[should_panic]
    fn inverted_interval_panics() {
        let o = Occupancy::new(1);
        o.available(0, 5, 3);
    }
}
