//! Pinned inputs from past property-test failures, ported from the old
//! `proptest-regressions` seed file so they survive the switch to
//! `rfh-testkit` (whose seeds are incompatible with proptest's).
//!
//! When a property in `tests/property.rs` fails, it prints the shrunk
//! minimal input — pin it here as a plain `#[test]` so every future run
//! retries the exact counterexample before any new cases are explored.

mod common;

use rfh::alloc::{AllocConfig, LrfMode};
use rfh::workloads::generator::GenConfig;

/// Historic `allocated_execution_matches_baseline` counterexample: a
/// two-level read-operand-only configuration on a loop-heavy kernel.
#[test]
fn alloc_matches_baseline_seed_999_read_operands_only() {
    let cfg = AllocConfig {
        orf_entries: 3,
        lrf: LrfMode::None,
        partial_ranges: false,
        read_operands: true,
        ideal_no_deschedule_split: false,
        occupancy_priority: true,
    };
    let shape = GenConfig {
        segments: 8,
        run_len: 7,
        max_trips: 2,
        pool: 5,
    };
    common::check_allocated_matches_baseline(999, cfg, shape);
}

/// Historic counterexample for the `(seed, shape)` family of properties;
/// the original failure was shrunk to this small single-trip shape, so all
/// three structural properties are re-checked on it.
#[test]
fn seed_538_small_shape_structural_properties() {
    let shape = GenConfig {
        segments: 7,
        run_len: 5,
        max_trips: 1,
        pool: 4,
    };
    common::check_dead_after_flags(538, shape);
    common::check_strand_partition(538, shape);
    common::check_text_round_trip(538, shape);
}

/// The abstract-interpretation-era checks on the same historic small
/// shape: refined `dead_after` flags stay sound, per-lane value claims
/// hold, and the hint pipeline splices transparently.
#[test]
fn seed_538_small_shape_absint_properties() {
    let shape = GenConfig {
        segments: 7,
        run_len: 5,
        max_trips: 1,
        pool: 4,
    };
    common::check_refined_dead_flags(538, shape);
    common::check_absint_sound(538, shape);
    common::check_hinted_allocation(538, AllocConfig::three_level(3, true), shape);
}
