//! Property-based tests over randomly generated kernels: for arbitrary
//! programs, allocation must produce validator-clean placements and
//! hierarchy-faithful execution must compute exactly the baseline result.
//!
//! Failures print an `RFH_TESTKIT_SEED` that reproduces the (shrunk)
//! input; pin any newly found counterexample in `tests/regressions.rs`.

mod common;

use rfh_testkit::prelude::*;

use rfh::alloc::AllocConfig;
use rfh::workloads::generator::GenConfig;

fn arb_config() -> impl Strategy<Value = AllocConfig> {
    (1usize..=8, 0u8..3, any::<bool>(), any::<bool>()).prop_map(|(entries, lrf, pr, ro)| {
        let mut cfg = match lrf {
            0 => AllocConfig::two_level(entries),
            1 => AllocConfig::three_level(entries, false),
            _ => AllocConfig::three_level(entries, true),
        };
        cfg.partial_ranges = pr;
        cfg.read_operands = ro;
        cfg
    })
}

fn arb_shape() -> impl Strategy<Value = GenConfig> {
    (2usize..10, 2usize..8, 1i32..6, 4u16..10).prop_map(|(segments, run_len, max_trips, pool)| {
        GenConfig {
            segments,
            run_len,
            max_trips,
            pool,
        }
    })
}

prop! {
    #![config(cases = 64)]

    /// The headline invariant: for any generated program and any hierarchy
    /// shape, the allocated kernel computes exactly the same memory image
    /// as the baseline, with operands flowing through the modeled ORF/LRF.
    fn allocated_execution_matches_baseline(seed in 0u64..5000, cfg in arb_config(), shape in arb_shape()) {
        common::check_allocated_matches_baseline(seed, cfg, shape);
    }

    /// Liveness annotations are sound: an operand flagged dead is never
    /// read again before a redefinition (checked dynamically per warp).
    fn dead_after_flags_are_sound(seed in 0u64..2000, shape in arb_shape()) {
        common::check_dead_after_flags(seed, shape);
    }

    /// The hint-refined `dead_after` flags (covered reads excluded from
    /// liveness) pass the same dynamic never-read-after-dead check.
    fn refined_dead_flags_are_sound(seed in 0u64..2000, shape in arb_shape()) {
        common::check_refined_dead_flags(seed, shape);
    }

    /// The abstract interpreter is sound on arbitrary programs: every
    /// executed register value lies in its predicted interval, affine
    /// claims match bit-exactly per lane, uniform-marked writes never
    /// diverge across a warp, and predicate/reachability claims hold.
    fn absint_predicts_executed_values(seed in 0u64..2000, shape in arb_shape()) {
        common::check_absint_sound(seed, shape);
    }

    /// `--hints off` splices byte-identically into the default allocation
    /// pipeline; `--hints on` stays validator-clean and matches the
    /// baseline memory image exactly.
    fn hinted_allocation_is_transparent(seed in 0u64..2000, cfg in arb_config(), shape in arb_shape()) {
        common::check_hinted_allocation(seed, cfg, shape);
    }

    /// Strand partitioning is consistent: every strand's instructions are
    /// layout-contiguous, exactly the last one carries the end bit, and
    /// every instruction belongs to exactly one strand.
    fn strand_partition_is_well_formed(seed in 0u64..2000, shape in arb_shape()) {
        common::check_strand_partition(seed, shape);
    }

    /// The textual format round-trips arbitrary generated kernels.
    fn text_round_trip(seed in 0u64..2000, shape in arb_shape()) {
        common::check_text_round_trip(seed, shape);
    }

    /// The two-level scheduler never deadlocks and always issues every
    /// instruction, at any active-set size.
    fn scheduler_conserves_instructions(seed in 0u64..500, active in 1usize..12) {
        use rfh::sim::exec::{execute, ExecMode};
        use rfh::sim::machine::MachineConfig;
        use rfh::sim::timing::{simulate_timing, TimingConfig, TraceCapture};
        use rfh::workloads::generator::random_program;

        let (kernel, launch, mut mem) = random_program(seed, GenConfig::default());
        let machine = MachineConfig::paper();
        let mut cap = TraceCapture::new(machine, launch.threads_per_cta);
        execute(&kernel, &launch, &mut mem, ExecMode::Baseline, &mut [&mut cap]).unwrap();
        let total: u64 = cap.traces.iter().map(|t| t.len() as u64).sum();
        let mut cfg = TimingConfig::two_level(active);
        cfg.machine = MachineConfig::paper();
        let r = simulate_timing(&cap.traces, &|w| cap.cta_of(w), &cfg).unwrap();
        prop_assert_eq!(r.instructions, total);
        prop_assert!(r.cycles >= total);
    }
}
