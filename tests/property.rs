//! Property-based tests over randomly generated kernels: for arbitrary
//! programs, allocation must produce validator-clean placements and
//! hierarchy-faithful execution must compute exactly the baseline result.

use proptest::prelude::*;

use rfh::alloc::{allocate, validate_placements, AllocConfig};
use rfh::energy::EnergyModel;
use rfh::sim::exec::{execute, ExecMode};
use rfh::sim::sink::NullSink;
use rfh::workloads::generator::{random_program, GenConfig};

fn arb_config() -> impl Strategy<Value = AllocConfig> {
    (1usize..=8, 0u8..3, any::<bool>(), any::<bool>()).prop_map(|(entries, lrf, pr, ro)| {
        let mut cfg = match lrf {
            0 => AllocConfig::two_level(entries),
            1 => AllocConfig::three_level(entries, false),
            _ => AllocConfig::three_level(entries, true),
        };
        cfg.partial_ranges = pr;
        cfg.read_operands = ro;
        cfg
    })
}

fn arb_shape() -> impl Strategy<Value = GenConfig> {
    (2usize..10, 2usize..8, 1i32..6, 4u16..10).prop_map(|(segments, run_len, max_trips, pool)| {
        GenConfig {
            segments,
            run_len,
            max_trips,
            pool,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline invariant: for any generated program and any hierarchy
    /// shape, the allocated kernel computes exactly the same memory image
    /// as the baseline, with operands flowing through the modeled ORF/LRF.
    #[test]
    fn allocated_execution_matches_baseline(seed in 0u64..5000, cfg in arb_config(), shape in arb_shape()) {
        let (kernel, launch, mem) = random_program(seed, shape);

        let mut base_mem = mem.clone();
        let mut sink = NullSink;
        execute(&kernel, &launch, &mut base_mem, ExecMode::Baseline, &mut [&mut sink]).unwrap();

        let mut allocated = kernel.clone();
        allocate(&mut allocated, &cfg, &EnergyModel::paper());
        validate_placements(&allocated, &cfg).unwrap();

        let mut hier_mem = mem.clone();
        execute(&allocated, &launch, &mut hier_mem, ExecMode::Hierarchy(cfg), &mut [&mut sink]).unwrap();

        prop_assert_eq!(base_mem.words(), hier_mem.words());
    }

    /// Liveness annotations are sound: an operand flagged dead is never
    /// read again before a redefinition (checked dynamically per warp).
    #[test]
    fn dead_after_flags_are_sound(seed in 0u64..2000, shape in arb_shape()) {
        use rfh::sim::sink::{InstrEvent, TraceSink};
        use std::collections::HashMap;

        #[derive(Default)]
        struct DeadChecker {
            // per warp: registers currently flagged dead
            dead: HashMap<usize, std::collections::HashSet<u16>>,
            violation: Option<String>,
        }
        impl TraceSink for DeadChecker {
            fn on_instr(&mut self, ev: &InstrEvent<'_>) {
                // The flags are path-sensitive ("last read on this path")
                // but this checker sees a serialized interleaving of
                // divergent paths, so it only *marks* registers dead during
                // fully convergent, unpredicated execution — where dynamic
                // order equals path order — and checks reads always.
                let converged = ev.active_mask == u32::MAX && ev.exec_mask == ev.active_mask;
                let dead = self.dead.entry(ev.warp).or_default();
                let mut to_mark = Vec::new();
                for (slot, src) in ev.instr.srcs.iter().enumerate() {
                    if let Some(r) = src.as_reg() {
                        if dead.contains(&r.index()) && self.violation.is_none() {
                            self.violation =
                                Some(format!("warp {} read dead {r} at {}", ev.warp, ev.at));
                        }
                        if ev.instr.dead_after[slot] && converged {
                            to_mark.push(r.index());
                        }
                    }
                }
                dead.extend(to_mark);
                // Definitions revive the register (a guarded def makes the
                // old value unobservable only for some lanes, but the flag
                // semantics already account for that via liveness).
                for r in ev.instr.def_regs() {
                    dead.remove(&r.index());
                }
            }
        }

        let (mut kernel, launch, mut mem) = random_program(seed, shape);
        let lv = rfh::analysis::Liveness::compute(&kernel);
        rfh::analysis::liveness::annotate_dead(&mut kernel, &lv);
        let mut checker = DeadChecker::default();
        execute(&kernel, &launch, &mut mem, ExecMode::Baseline, &mut [&mut checker]).unwrap();
        prop_assert!(checker.violation.is_none(), "{:?}", checker.violation);
    }

    /// Strand partitioning is consistent: every strand's instructions are
    /// layout-contiguous, exactly the last one carries the end bit, and
    /// every instruction belongs to exactly one strand.
    #[test]
    fn strand_partition_is_well_formed(seed in 0u64..2000, shape in arb_shape()) {
        let (mut kernel, _, _) = random_program(seed, shape);
        let info = rfh::analysis::strand::mark_strands(&mut kernel);
        let mut covered = 0usize;
        for s in &info.strands {
            covered += s.instrs.len();
            for (i, at) in s.instrs.iter().enumerate() {
                let instr = kernel.instr(*at);
                let last = i + 1 == s.instrs.len();
                prop_assert_eq!(instr.ends_strand && !last, false,
                    "interior instruction with end bit in strand {:?}", s.id);
                prop_assert_eq!(info.strand_of(*at), s.id);
            }
            // Layout contiguity.
            for w in s.instrs.windows(2) {
                let a = (w[0].block.index(), w[0].index);
                let b = (w[1].block.index(), w[1].index);
                prop_assert!(b == (a.0, a.1 + 1) || (b.0 > a.0 && b.1 == 0));
            }
        }
        prop_assert_eq!(covered, kernel.instr_count());
    }

    /// The textual format round-trips arbitrary generated kernels.
    #[test]
    fn text_round_trip(seed in 0u64..2000, shape in arb_shape()) {
        let (kernel, _, _) = random_program(seed, shape);
        let text = rfh::isa::printer::print_kernel(&kernel);
        let parsed = rfh::isa::parse_kernel(&text).unwrap();
        prop_assert_eq!(parsed, kernel);
    }

    /// The two-level scheduler never deadlocks and always issues every
    /// instruction, at any active-set size.
    #[test]
    fn scheduler_conserves_instructions(seed in 0u64..500, active in 1usize..12) {
        use rfh::sim::machine::MachineConfig;
        use rfh::sim::timing::{simulate_timing, TimingConfig, TraceCapture};

        let (kernel, launch, mut mem) = random_program(seed, GenConfig::default());
        let machine = MachineConfig::paper();
        let mut cap = TraceCapture::new(machine, launch.threads_per_cta);
        execute(&kernel, &launch, &mut mem, ExecMode::Baseline, &mut [&mut cap]).unwrap();
        let total: u64 = cap.traces.iter().map(|t| t.len() as u64).sum();
        let mut cfg = TimingConfig::two_level(active);
        cfg.machine = MachineConfig::paper();
        let r = simulate_timing(&cap.traces, &|w| cap.cta_of(w), &cfg);
        prop_assert_eq!(r.instructions, total);
        prop_assert!(r.cycles >= total);
    }
}
