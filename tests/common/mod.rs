//! Checks shared between the property tests (`tests/property.rs`) and the
//! pinned regression inputs (`tests/regressions.rs`). Each check panics on
//! violation; the property runner catches and shrinks, `#[test]`s just
//! fail.

use std::collections::{HashMap, HashSet};

use rfh::alloc::{allocate, validate_placements, AllocConfig};
use rfh::energy::EnergyModel;
use rfh::sim::exec::{execute, ExecMode};
use rfh::sim::sink::{InstrEvent, NullSink, TraceSink};
use rfh::workloads::generator::{random_program, GenConfig};

/// The headline invariant: for any generated program and any hierarchy
/// shape, the allocated kernel computes exactly the same memory image as
/// the baseline, with operands flowing through the modeled ORF/LRF.
pub fn check_allocated_matches_baseline(seed: u64, cfg: AllocConfig, shape: GenConfig) {
    let (kernel, launch, mem) = random_program(seed, shape);

    let mut base_mem = mem.clone();
    let mut sink = NullSink;
    execute(
        &kernel,
        &launch,
        &mut base_mem,
        ExecMode::Baseline,
        &mut [&mut sink],
    )
    .unwrap();

    let mut allocated = kernel.clone();
    allocate(&mut allocated, &cfg, &EnergyModel::paper()).unwrap();
    validate_placements(&allocated, &cfg).unwrap();

    let mut hier_mem = mem.clone();
    execute(
        &allocated,
        &launch,
        &mut hier_mem,
        ExecMode::Hierarchy(cfg),
        &mut [&mut sink],
    )
    .unwrap();

    assert_eq!(base_mem.words(), hier_mem.words());
}

/// Liveness annotations are sound: an operand flagged dead is never read
/// again before a redefinition (checked dynamically per warp).
pub fn check_dead_after_flags(seed: u64, shape: GenConfig) {
    #[derive(Default)]
    struct DeadChecker {
        // per warp: registers currently flagged dead
        dead: HashMap<usize, HashSet<u16>>,
        violation: Option<String>,
    }
    impl TraceSink for DeadChecker {
        fn on_instr(&mut self, ev: &InstrEvent<'_>) {
            // The flags are path-sensitive ("last read on this path") but
            // this checker sees a serialized interleaving of divergent
            // paths, so it only *marks* registers dead during fully
            // convergent, unpredicated execution — where dynamic order
            // equals path order — and checks reads always.
            let converged = ev.active_mask == u32::MAX && ev.exec_mask == ev.active_mask;
            let dead = self.dead.entry(ev.warp).or_default();
            let mut to_mark = Vec::new();
            for (slot, src) in ev.instr.srcs.iter().enumerate() {
                if let Some(r) = src.as_reg() {
                    if dead.contains(&r.index()) && self.violation.is_none() {
                        self.violation =
                            Some(format!("warp {} read dead {r} at {}", ev.warp, ev.at));
                    }
                    if ev.instr.dead_after[slot] && converged {
                        to_mark.push(r.index());
                    }
                }
            }
            dead.extend(to_mark);
            // Definitions revive the register (a guarded def makes the old
            // value unobservable only for some lanes, but the flag
            // semantics already account for that via liveness).
            for r in ev.instr.def_regs() {
                dead.remove(&r.index());
            }
        }
    }

    let (mut kernel, launch, mut mem) = random_program(seed, shape);
    let lv = rfh::analysis::Liveness::compute(&kernel);
    rfh::analysis::liveness::annotate_dead(&mut kernel, &lv);
    let mut checker = DeadChecker::default();
    execute(
        &kernel,
        &launch,
        &mut mem,
        ExecMode::Baseline,
        &mut [&mut checker],
    )
    .unwrap();
    assert!(checker.violation.is_none(), "{:?}", checker.violation);
}

/// Strand partitioning is consistent: every strand's instructions are
/// layout-contiguous, exactly the last one carries the end bit, and every
/// instruction belongs to exactly one strand.
pub fn check_strand_partition(seed: u64, shape: GenConfig) {
    let (mut kernel, _, _) = random_program(seed, shape);
    let info = rfh::analysis::strand::mark_strands(&mut kernel);
    let mut covered = 0usize;
    for s in &info.strands {
        covered += s.instrs.len();
        for (i, at) in s.instrs.iter().enumerate() {
            let instr = kernel.instr(*at);
            let last = i + 1 == s.instrs.len();
            assert!(
                !instr.ends_strand || last,
                "interior instruction with end bit in strand {:?}",
                s.id
            );
            assert_eq!(info.strand_of(*at), s.id);
        }
        // Layout contiguity.
        for w in s.instrs.windows(2) {
            let a = (w[0].block.index(), w[0].index);
            let b = (w[1].block.index(), w[1].index);
            assert!(b == (a.0, a.1 + 1) || (b.0 > a.0 && b.1 == 0));
        }
    }
    assert_eq!(covered, kernel.instr_count());
}

/// The textual format round-trips the generated kernel exactly.
pub fn check_text_round_trip(seed: u64, shape: GenConfig) {
    let (kernel, _, _) = random_program(seed, shape);
    let text = rfh::isa::printer::print_kernel(&kernel);
    let parsed = rfh::isa::parse_kernel(&text).unwrap();
    assert_eq!(parsed, kernel);
}
