//! Checks shared between the property tests (`tests/property.rs`) and the
//! pinned regression inputs (`tests/regressions.rs`). Each check panics on
//! violation; the property runner catches and shrinks, `#[test]`s just
//! fail.

use std::collections::{HashMap, HashSet};

use rfh::alloc::{allocate, validate_placements, AllocConfig};
use rfh::energy::EnergyModel;
use rfh::sim::exec::{execute, ExecMode};
use rfh::sim::sink::{InstrEvent, NullSink, TraceSink};
use rfh::workloads::generator::{random_program, GenConfig};

/// The headline invariant: for any generated program and any hierarchy
/// shape, the allocated kernel computes exactly the same memory image as
/// the baseline, with operands flowing through the modeled ORF/LRF.
pub fn check_allocated_matches_baseline(seed: u64, cfg: AllocConfig, shape: GenConfig) {
    let (kernel, launch, mem) = random_program(seed, shape);

    let mut base_mem = mem.clone();
    let mut sink = NullSink;
    execute(
        &kernel,
        &launch,
        &mut base_mem,
        ExecMode::Baseline,
        &mut [&mut sink],
    )
    .unwrap();

    let mut allocated = kernel.clone();
    allocate(&mut allocated, &cfg, &EnergyModel::paper()).unwrap();
    validate_placements(&allocated, &cfg).unwrap();

    let mut hier_mem = mem.clone();
    execute(
        &allocated,
        &launch,
        &mut hier_mem,
        ExecMode::Hierarchy(cfg),
        &mut [&mut sink],
    )
    .unwrap();

    assert_eq!(base_mem.words(), hier_mem.words());
}

/// Dynamic per-warp checker for `dead_after` flags, shared by the default
/// and the hint-refined liveness properties.
#[derive(Default)]
struct DeadChecker {
    // per warp: registers currently flagged dead
    dead: HashMap<usize, HashSet<u16>>,
    violation: Option<String>,
}

impl TraceSink for DeadChecker {
    fn on_instr(&mut self, ev: &InstrEvent<'_>) {
        // The flags are path-sensitive ("last read on this path") but
        // this checker sees a serialized interleaving of divergent
        // paths, so it only *marks* registers dead during fully
        // convergent, unpredicated execution — where dynamic order
        // equals path order — and checks reads always.
        let converged = ev.active_mask == u32::MAX && ev.exec_mask == ev.active_mask;
        let dead = self.dead.entry(ev.warp).or_default();
        let mut to_mark = Vec::new();
        for (slot, src) in ev.instr.srcs.iter().enumerate() {
            if let Some(r) = src.as_reg() {
                if dead.contains(&r.index()) && self.violation.is_none() {
                    self.violation = Some(format!("warp {} read dead {r} at {}", ev.warp, ev.at));
                }
                if ev.instr.dead_after[slot] && converged {
                    to_mark.push(r.index());
                }
            }
        }
        dead.extend(to_mark);
        // Definitions revive the register (a guarded def makes the old
        // value unobservable only for some lanes, but the flag
        // semantics already account for that via liveness).
        for r in ev.instr.def_regs() {
            dead.remove(&r.index());
        }
    }
}

fn run_dead_checker(
    kernel: &rfh::isa::Kernel,
    launch: &rfh::sim::exec::Launch,
    mem: &mut rfh::sim::mem::GlobalMemory,
) {
    let mut checker = DeadChecker::default();
    execute(kernel, launch, mem, ExecMode::Baseline, &mut [&mut checker]).unwrap();
    assert!(checker.violation.is_none(), "{:?}", checker.violation);
}

/// Liveness annotations are sound: an operand flagged dead is never read
/// again before a redefinition (checked dynamically per warp).
pub fn check_dead_after_flags(seed: u64, shape: GenConfig) {
    let (mut kernel, launch, mut mem) = random_program(seed, shape);
    let lv = rfh::analysis::Liveness::compute(&kernel);
    rfh::analysis::liveness::annotate_dead(&mut kernel, &lv);
    run_dead_checker(&kernel, &launch, &mut mem);
}

/// The last-use hint pass only strengthens `dead_after`: the refined flags
/// (covered reads excluded from liveness) must still never let a flagged
/// register be read before a redefinition, on the same dynamic check as
/// [`check_dead_after_flags`].
pub fn check_refined_dead_flags(seed: u64, shape: GenConfig) {
    let (mut kernel, launch, mut mem) = random_program(seed, shape);
    rfh::analysis::strand::mark_strands(&mut kernel);
    let hints = rfh::analysis::absint::last_use::analyze(&kernel);
    hints.apply_dead_flags(&mut kernel);
    run_dead_checker(&kernel, &launch, &mut mem);
}

/// The abstract interpreter is sound on arbitrary generated programs:
/// every register value the executor writes lies inside the predicted
/// interval, matches the affine form bit-exactly when one is claimed, and
/// never diverges across executing lanes when marked uniform. Predicate
/// writes respect known/uniform claims, and no lane executes an
/// instruction the analysis proved unreachable.
pub fn check_absint_sound(seed: u64, shape: GenConfig) {
    use rfh::analysis::absint::{self, AbsCtx, AbsResults};
    use rfh::isa::{InstrRef, Kernel, Reg};

    struct ValueChecker<'a> {
        kernel: &'a Kernel,
        res: &'a AbsResults,
        warps_per_cta: usize,
        violation: Option<String>,
    }

    impl ValueChecker<'_> {
        fn check_claim(
            &mut self,
            claim: &absint::AbsVal,
            warp: usize,
            at: InstrRef,
            reg: Reg,
            lanes: &[u32],
            exec_mask: u32,
        ) {
            let mut first: Option<u32> = None;
            for (lane, &v) in lanes.iter().enumerate() {
                if exec_mask & (1 << lane) == 0 {
                    continue;
                }
                let signed = v as i32;
                if signed < claim.lo || signed > claim.hi {
                    self.violation = Some(format!(
                        "interval broken at {at}: warp {warp} lane {lane} wrote {signed} to \
                         {reg}, outside [{}, {}]",
                        claim.lo, claim.hi
                    ));
                    return;
                }
                if let Some((coef, off)) = claim.affine {
                    let tid = ((warp % self.warps_per_cta) * 32 + lane) as i32;
                    let expect = coef.wrapping_mul(tid).wrapping_add(off) as u32;
                    if v != expect {
                        self.violation = Some(format!(
                            "affine claim broken at {at}: lane {lane} wrote {v:#x} to {reg}, \
                             expected {coef}·{tid} + {off}"
                        ));
                        return;
                    }
                }
                match first {
                    None => first = Some(v),
                    Some(w0) if claim.uniform && v != w0 => {
                        self.violation = Some(format!(
                            "uniform claim broken at {at}: {reg} got {w0:#x} and {v:#x}"
                        ));
                        return;
                    }
                    Some(_) => {}
                }
            }
        }
    }

    impl TraceSink for ValueChecker<'_> {
        fn on_instr(&mut self, ev: &InstrEvent<'_>) {
            if self.violation.is_none() && ev.exec_mask != 0 && !self.res.fact(ev.at).reachable {
                self.violation = Some(format!("lanes executed unreachable-marked {}", ev.at));
            }
        }

        fn on_reg_write(
            &mut self,
            warp: usize,
            at: InstrRef,
            reg: Reg,
            lanes: &[u32],
            exec_mask: u32,
        ) {
            if self.violation.is_some() {
                return;
            }
            let Some(d) = self.kernel.instr(at).dst else {
                return;
            };
            let f = self.res.fact(at);
            let claim = if reg == d.reg { &f.dst } else { &f.dst_hi };
            if let Some(claim) = *claim {
                self.check_claim(&claim, warp, at, reg, lanes, exec_mask);
            }
        }

        fn on_pred_write(
            &mut self,
            warp: usize,
            at: InstrRef,
            pred: rfh::isa::PredReg,
            bits: u32,
            exec_mask: u32,
        ) {
            if self.violation.is_some() {
                return;
            }
            let Some(claim) = &self.res.fact(at).pdst else {
                return;
            };
            let exec_bits = bits & exec_mask;
            if let Some(v) = claim.known {
                let expect = if v { exec_mask } else { 0 };
                if exec_bits != expect {
                    self.violation = Some(format!(
                        "known-predicate claim broken at {at}: warp {warp} wrote {bits:#x} to \
                         {pred}, analysis proved every lane writes {v}"
                    ));
                }
            } else if claim.uniform && exec_bits != 0 && exec_bits != exec_mask {
                self.violation = Some(format!(
                    "uniform-predicate claim broken at {at}: mixed bits {bits:#x} in {pred}"
                ));
            }
        }
    }

    let (mut kernel, launch, mut mem) = random_program(seed, shape);
    rfh::analysis::strand::mark_strands(&mut kernel);
    let res = absint::analyze(
        &kernel,
        AbsCtx {
            threads_per_cta: Some(launch.threads_per_cta as u32),
            ctas: Some(launch.ctas as u32),
        },
    );
    let mut checker = ValueChecker {
        kernel: &kernel,
        res: &res,
        warps_per_cta: launch.threads_per_cta.div_ceil(32),
        violation: None,
    };
    execute(
        &kernel,
        &launch,
        &mut mem,
        ExecMode::Baseline,
        &mut [&mut checker],
    )
    .unwrap();
    assert!(checker.violation.is_none(), "{:?}", checker.violation);
}

/// `allocate_with_hints(.., false)` must be byte-for-byte the plain
/// `allocate` pipeline, and the hinted pipeline must still place
/// validator-clean annotations and execute to exactly the baseline image.
pub fn check_hinted_allocation(seed: u64, cfg: AllocConfig, shape: GenConfig) {
    let (kernel, launch, mem) = random_program(seed, shape);

    let mut plain = kernel.clone();
    allocate(&mut plain, &cfg, &EnergyModel::paper()).unwrap();
    let mut off = kernel.clone();
    rfh::alloc::allocate_with_hints(&mut off, &cfg, &EnergyModel::paper(), false).unwrap();
    assert_eq!(
        plain, off,
        "hints off must splice into the default pipeline"
    );

    let mut on = kernel.clone();
    rfh::alloc::allocate_with_hints(&mut on, &cfg, &EnergyModel::paper(), true).unwrap();
    validate_placements(&on, &cfg).unwrap();

    let mut base_mem = mem.clone();
    execute(&kernel, &launch, &mut base_mem, ExecMode::Baseline, &mut []).unwrap();
    let mut hier_mem = mem.clone();
    execute(
        &on,
        &launch,
        &mut hier_mem,
        ExecMode::Hierarchy(cfg),
        &mut [],
    )
    .unwrap();
    assert_eq!(base_mem.words(), hier_mem.words());
}

/// Strand partitioning is consistent: every strand's instructions are
/// layout-contiguous, exactly the last one carries the end bit, and every
/// instruction belongs to exactly one strand.
pub fn check_strand_partition(seed: u64, shape: GenConfig) {
    let (mut kernel, _, _) = random_program(seed, shape);
    let info = rfh::analysis::strand::mark_strands(&mut kernel);
    let mut covered = 0usize;
    for s in &info.strands {
        covered += s.instrs.len();
        for (i, at) in s.instrs.iter().enumerate() {
            let instr = kernel.instr(*at);
            let last = i + 1 == s.instrs.len();
            assert!(
                !instr.ends_strand || last,
                "interior instruction with end bit in strand {:?}",
                s.id
            );
            assert_eq!(info.strand_of(*at), s.id);
        }
        // Layout contiguity.
        for w in s.instrs.windows(2) {
            let a = (w[0].block.index(), w[0].index);
            let b = (w[1].block.index(), w[1].index);
            assert!(b == (a.0, a.1 + 1) || (b.0 > a.0 && b.1 == 0));
        }
    }
    assert_eq!(covered, kernel.instr_count());
}

/// The textual format round-trips the generated kernel exactly.
pub fn check_text_round_trip(seed: u64, shape: GenConfig) {
    let (kernel, _, _) = random_program(seed, shape);
    let text = rfh::isa::printer::print_kernel(&kernel);
    let parsed = rfh::isa::parse_kernel(&text).unwrap();
    assert_eq!(parsed, kernel);
}
