//! End-to-end tests for the `rfhc` compiler driver binary, located via
//! `CARGO_BIN_EXE_rfhc` (cargo builds the bin for integration tests of
//! this package automatically).

use std::io::Write;
use std::process::{Command, Output, Stdio};

const KERNEL: &str = "
.kernel axpy
BB0:
  mov r0, %tid.x
  ld.param r1 0
  iadd r2 r1, r0
  ld.global r3 r2
  fmul r4 r3, 2.0f
  fadd r5 r4, r3
  st.global r2, r5
  exit
";

fn rfhc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rfhc"))
        .args(args)
        .output()
        .expect("spawn rfhc")
}

fn rfhc_stdin(args: &[&str], stdin: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_rfhc"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rfhc");
    child
        .stdin
        .take()
        .expect("stdin handle")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    child.wait_with_output().expect("wait rfhc")
}

fn write_kernel(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("axpy.rfasm");
    std::fs::write(&path, KERNEL).expect("write kernel");
    path
}

#[test]
fn no_input_is_a_usage_error() {
    let out = rfhc(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = rfhc(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn oversized_orf_is_rejected() {
    let out = rfhc(&["--orf", "9", "x.rfasm"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no energy model"));
}

#[test]
fn missing_file_is_a_read_error() {
    let out = rfhc(&["/nonexistent/kernel.rfasm"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn malformed_kernel_is_a_parse_error() {
    let out = rfhc_stdin(&["-"], "this is not a kernel\n");
    assert_eq!(out.status.code(), Some(3), "parse errors exit with code 3");
    assert!(String::from_utf8_lossy(&out.stderr).contains("rfhc:"));
}

#[test]
fn structurally_invalid_kernel_is_exit_code_4() {
    // Parses fine but fails validation: code after `exit` in the block.
    let out = rfhc_stdin(&["-"], ".kernel bad\nBB0:\n  exit\n  iadd r0 r0, r0\n");
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("rfhc:"));
}

#[test]
fn stdin_plain_output_parses_back() {
    let out = rfhc_stdin(&["--plain", "-"], KERNEL);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8(out.stdout).expect("utf8 output");
    // `--plain` output is the textual format itself: it must round-trip
    // through the parser and preserve the instruction count.
    let reparsed = rfh::isa::parse_kernel(&text).expect("plain output reparses");
    let original = rfh::isa::parse_kernel(KERNEL).unwrap();
    assert_eq!(reparsed.instr_count(), original.instr_count());
    assert_eq!(reparsed.name, original.name);
}

#[test]
fn file_input_annotated_output_and_stats() {
    let dir = std::env::temp_dir().join("rfhc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = write_kernel(&dir);

    let out = rfhc(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("strands"), "stats line on stderr: {stderr}");
    assert!(!out.stdout.is_empty(), "annotated kernel on stdout");

    // --stats suppresses the kernel itself.
    let out = rfhc(&["--stats", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    assert!(out.stdout.is_empty());
}

#[test]
fn lint_clean_kernel_exits_zero() {
    let out = rfhc_stdin(&["lint", "-"], KERNEL);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("0 error(s), 0 warning(s)"),
        "summary on stderr: {stderr}"
    );
    assert!(out.stdout.is_empty(), "no diagnostics for a clean kernel");
}

#[test]
fn lint_errors_exit_with_code_8() {
    // r7 is read but never defined: RFH-L001, an error.
    let bad = ".kernel broken\nBB0:\n  iadd r0 r7, r7\n  st.global 0, r0\n  exit\n";
    let out = rfhc_stdin(&["lint", "-"], bad);
    assert_eq!(out.status.code(), Some(8), "lint errors exit with code 8");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[RFH-L001]"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("rfhc lint:"), "{stderr}");
}

#[test]
fn lint_warnings_alone_exit_zero() {
    // A dead def is RFH-L003, a warning: reported but not fatal.
    let warn = ".kernel warny\nBB0:\n  mov r1, 5\n  exit\n";
    let out = rfhc_stdin(&["lint", "-"], warn);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("warning[RFH-L003]"), "{stdout}");
}

#[test]
fn lint_json_output_is_one_object_per_line() {
    let bad = ".kernel broken\nBB0:\n  iadd r0 r7, r7\n  st.global 0, r0\n  exit\n";
    let out = rfhc_stdin(&["lint", "--json", "-"], bad);
    assert_eq!(out.status.code(), Some(8));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for line in stdout.lines() {
        assert!(
            line.starts_with("{\"kernel\":\"<stdin>\",\"code\":\"RFH-L") && line.ends_with('}'),
            "stable JSON shape: {line}"
        );
    }
    assert!(stdout.contains("\"severity\":\"error\""), "{stdout}");
}

#[test]
fn lint_respects_config_flags() {
    // The pressure warning depends on the configured capacity: a 1-entry
    // ORF with no LRF (capacity 1) trips RFH-L008 on the axpy kernel,
    // while the default capacity does not.
    let out = rfhc_stdin(&["lint", "--orf", "1", "--lrf", "none", "-"], KERNEL);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("warning[RFH-L008]"), "{stdout}");
}

#[test]
fn lint_rejects_malformed_input_with_the_parse_exit_code() {
    let out = rfhc_stdin(&["lint", "-"], "not a kernel\n");
    assert_eq!(out.status.code(), Some(3), "parse errors exit 3 under lint");
}

/// `rfhc trace` executes the kernel, and its launch carries no kernel
/// parameters — the trace tests use a param-free kernel.
const TRACE_KERNEL: &str = "
.kernel tally
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  iadd r2 r1, 7
  imul r3 r2, r2
  iadd r4 r3, r1
  st.global r0, r4
  exit
";

fn rfhc_stdin_env(args: &[&str], stdin: &str, env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_rfhc"));
    cmd.args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    for (k, v) in env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn rfhc");
    child
        .stdin
        .take()
        .expect("stdin handle")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    child.wait_with_output().expect("wait rfhc")
}

#[test]
fn trace_json_is_one_object_per_line() {
    let out = rfhc_stdin(&["trace", "-"], TRACE_KERNEL);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.is_empty(), "trace records on stdout");
    for line in stdout.lines() {
        assert!(
            line.starts_with("{\"seq\":") && line.ends_with('}'),
            "stable JSON-lines shape: {line}"
        );
    }
    assert!(stdout.contains("\"accesses\":["), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("rfhc trace:"),
        "summary on stderr: {stderr}"
    );
    assert!(stderr.contains("strand(s)"), "{stderr}");
}

#[test]
fn trace_chrome_is_a_single_trace_object() {
    let out = rfhc_stdin(&["trace", "--chrome", "-"], TRACE_KERNEL);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("{\"traceEvents\":["), "{stdout}");
    assert!(stdout.contains("\"ph\":\"X\""), "{stdout}");
}

#[test]
fn trace_profile_renders_the_strand_table() {
    let out = rfhc_stdin(&["trace", "--profile", "-"], TRACE_KERNEL);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with("# per-strand energy attribution"),
        "{stdout}"
    );
    assert!(stdout.contains("\ntotal\t"), "totals row: {stdout}");
    assert!(stdout.trim_end().ends_with("1.0000"), "{stdout}");
}

#[test]
fn trace_baseline_mode_traces_the_unallocated_kernel() {
    let out = rfhc_stdin(&["trace", "--baseline", "-"], TRACE_KERNEL);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // A baseline trace never touches the upper levels.
    assert!(!stdout.contains("ORF"), "{stdout}");
    assert!(!stdout.contains("LRF"), "{stdout}");
}

#[test]
fn trace_engines_produce_byte_identical_output() {
    let soa = rfhc_stdin(&["trace", "--engine", "soa", "-"], TRACE_KERNEL);
    let oracle = rfhc_stdin(&["trace", "--engine", "reference", "-"], TRACE_KERNEL);
    assert_eq!(soa.status.code(), Some(0), "{soa:?}");
    assert_eq!(oracle.status.code(), Some(0), "{oracle:?}");
    assert_eq!(
        soa.stdout, oracle.stdout,
        "both executor engines must export the identical trace"
    );
    let default = rfhc_stdin(&["trace", "-"], TRACE_KERNEL);
    assert_eq!(default.stdout, soa.stdout, "SoA is the default engine");
}

#[test]
fn trace_rejects_an_unknown_engine() {
    // Arg parsing fails before stdin is read, so no input is piped.
    let out = rfhc(&["trace", "--engine", "turbo", "-"]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--engine needs soa|reference"), "{stderr}");
}

#[test]
fn trace_json_is_byte_identical_at_any_job_count() {
    let one = rfhc_stdin_env(&["trace", "-"], TRACE_KERNEL, &[("RFH_JOBS", "1")]);
    let eight = rfhc_stdin_env(&["trace", "-"], TRACE_KERNEL, &[("RFH_JOBS", "8")]);
    assert_eq!(one.status.code(), Some(0), "{one:?}");
    assert_eq!(eight.status.code(), Some(0), "{eight:?}");
    assert_eq!(
        one.stdout, eight.stdout,
        "trace output must not depend on the worker-pool size"
    );
}

#[test]
fn jobs_flag_overrides_the_env_knob() {
    // A valid --jobs wins over a malformed RFH_JOBS: no warning, clean run.
    let out = rfhc_stdin_env(
        &["trace", "--jobs", "2", "-"],
        TRACE_KERNEL,
        &[("RFH_JOBS", "not-a-number")],
    );
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("warning:"), "{stderr}");
}

#[test]
fn malformed_jobs_flag_warns_like_the_env_knob() {
    let out = rfhc_stdin(&["--jobs", "nope", "--stats", "-"], TRACE_KERNEL);
    assert_eq!(out.status.code(), Some(0), "malformed --jobs falls back");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("warning: --jobs=\"nope\" is not a valid integer"),
        "knob-grammar warning on stderr: {stderr}"
    );
}

#[test]
fn jobs_flag_without_a_value_is_a_usage_error() {
    // The process exits before reading stdin, so none is supplied.
    let out = rfhc(&["--stats", "-", "--jobs"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs needs a value"));
}

#[test]
fn config_flags_change_the_allocation() {
    // With a 2-entry ORF and no LRF the stats line must reflect the
    // requested configuration.
    let out = rfhc_stdin(&["--orf", "2", "--lrf", "none", "--stats", "-"], KERNEL);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("2 ORF entries"), "{stderr}");
    assert!(stderr.contains("no LRF"), "{stderr}");
    assert!(stderr.contains("0 LRF values"), "{stderr}");
}

// --- rfhc serve / rfhc client ------------------------------------------

#[test]
fn serve_without_an_endpoint_is_a_usage_error() {
    let out = rfhc(&["serve"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("serve needs --tcp HOST:PORT or --unix PATH"),
        "{stderr}"
    );
}

#[test]
fn client_without_an_endpoint_is_a_usage_error() {
    let out = rfhc(&["client", "--op", "ping"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("client needs --tcp HOST:PORT or --unix PATH"),
        "{stderr}"
    );
}

#[test]
fn client_workload_and_file_are_mutually_exclusive() {
    let out = rfhc(&[
        "client",
        "--unix",
        "/tmp/does-not-matter.sock",
        "--workload",
        "vectoradd",
        "x.rfasm",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");
}

#[test]
fn client_connect_refused_exits_with_the_transport_code() {
    // No daemon on that socket: dialing fails even after retries, and
    // transport failures map to the protocol/transport exit code (9).
    let out = rfhc(&[
        "client",
        "--unix",
        "/nonexistent/rfhd-no-such-daemon.sock",
        "--op",
        "ping",
    ]);
    assert_eq!(out.status.code(), Some(9), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("daemon connection failed"), "{stderr}");
}

/// Spawns `rfhc serve --unix <sock>` with the given extra environment
/// and waits until the socket file exists (the daemon binds before it
/// prints anything, so the file is the readiness signal).
fn spawn_serve(sock: &std::path::Path, env: &[(&str, &str)]) -> std::process::Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_rfhc"));
    cmd.args(["serve", "--unix", sock.to_str().unwrap(), "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    for (k, v) in env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn rfhc serve");
    for _ in 0..100 {
        if sock.exists() {
            return child;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    // Reap the stuck daemon before failing so the test leaves no zombie.
    let _ = child.kill();
    let _ = child.wait();
    panic!("daemon socket never appeared at {}", sock.display());
}

fn client(sock: &std::path::Path, args: &[&str]) -> Output {
    let mut full = vec!["client", "--unix", sock.to_str().unwrap()];
    full.extend_from_slice(args);
    rfhc(&full)
}

#[test]
fn serve_client_round_trip_over_a_unix_socket() {
    let dir = std::env::temp_dir().join("rfhc-cli-daemon-test");
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("roundtrip.sock");
    let _ = std::fs::remove_file(&sock);
    let child = spawn_serve(&sock, &[]);

    // A ping round-trips.
    let out = client(&sock, &["--op", "ping"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("pong"),
        "{out:?}"
    );

    // A malformed frame gets a structured protocol error frame back,
    // which the probe maps to exit code 9 — and the daemon survives it.
    let out = client(&sock, &["--malformed-probe"]);
    assert_eq!(out.status.code(), Some(9), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("malformed-frame probe answered"),
        "{stderr}"
    );

    // A remote parse failure carries the local parse exit code (3).
    let out = rfhc_stdin(
        &[
            "client",
            "--unix",
            sock.to_str().unwrap(),
            "--op",
            "lint",
            "-",
        ],
        "not a kernel\n",
    );
    assert_eq!(out.status.code(), Some(3), "{out:?}");

    // Still alive after both failures: a second ping succeeds, served
    // from the same process.
    let out = client(&sock, &["--op", "ping"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // Shutdown drains: the serve process exits 0 and removes its socket.
    let out = client(&sock, &["--op", "shutdown"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let served = child.wait_with_output().expect("wait rfhc serve");
    assert_eq!(served.status.code(), Some(0), "{served:?}");
    assert!(!sock.exists(), "socket file survived the drain");
    let stderr = String::from_utf8_lossy(&served.stderr);
    assert!(stderr.contains("rfhc serve: drained"), "{stderr}");
}

#[test]
fn malformed_rfhd_knobs_warn_and_fall_back() {
    // All three RFHD_* knobs follow the shared grammar: a malformed value
    // warns loudly on stderr and the daemon runs on its default.
    let dir = std::env::temp_dir().join("rfhc-cli-daemon-test");
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("knobs.sock");
    let _ = std::fs::remove_file(&sock);
    let child = spawn_serve(
        &sock,
        &[
            ("RFHD_TIMEOUT_MS", "soon"),
            ("RFHD_QUEUE_DEPTH", "0"),
            ("RFHD_CACHE_ENTRIES", "0xGG"),
        ],
    );

    // Despite three bad knobs the daemon is healthy.
    let out = client(&sock, &["--op", "ping"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = client(&sock, &["--op", "shutdown"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    let served = child.wait_with_output().expect("wait rfhc serve");
    assert_eq!(served.status.code(), Some(0), "{served:?}");
    let stderr = String::from_utf8_lossy(&served.stderr);
    assert!(
        stderr.contains("warning: RFHD_TIMEOUT_MS=\"soon\" is not a valid integer"),
        "{stderr}"
    );
    assert!(
        stderr.contains("warning: RFHD_QUEUE_DEPTH=0 is not a valid count"),
        "{stderr}"
    );
    assert!(
        stderr.contains("warning: RFHD_CACHE_ENTRIES=\"0xGG\" is not a valid integer"),
        "{stderr}"
    );
}

#[test]
fn client_timeout_flag_bounds_a_runaway_kernel() {
    // An infinite loop submitted with a tight wall-clock timeout comes
    // back as a structured timeout (9) or budget-exhaustion (6) frame —
    // either way the isolation boundary held and the daemon lives on.
    let dir = std::env::temp_dir().join("rfhc-cli-daemon-test");
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("timeout.sock");
    let _ = std::fs::remove_file(&sock);
    let child = spawn_serve(&sock, &[]);

    let spin = ".kernel spin\nBB0:\n  mov r0, %tid.x\n  iadd r0 r0, 1\n  bra BB0\n";
    let out = rfhc_stdin(
        &[
            "client",
            "--unix",
            sock.to_str().unwrap(),
            "--op",
            "simulate",
            "--timeout-ms",
            "100",
            "-",
        ],
        spin,
    );
    let code = out.status.code();
    assert!(
        code == Some(9) || code == Some(6),
        "spin must hit the timeout (9) or the instruction budget (6): {out:?}"
    );

    // The worker that ran the spin is reclaimed; the daemon still serves.
    let out = client(&sock, &["--op", "ping"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let out = client(&sock, &["--op", "shutdown"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let served = child.wait_with_output().expect("wait rfhc serve");
    assert_eq!(served.status.code(), Some(0), "{served:?}");
}
