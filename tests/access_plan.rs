//! Differential proof that the canonical access-resolution layer
//! ([`rfh::isa::AccessPlan`]) preserves the pre-refactor counting rules.
//!
//! `LegacySwCounter` below is a frozen replica of `SwCounter` as it stood
//! before every consumer was rebased onto `AccessPlan`: it hand-matches
//! `read_locs` / `write_loc` with the original rules (one read per
//! register source at its annotated level, `MrfFillOrf` adds a private
//! ORF write, W64 destinations cost two accesses at every level written,
//! ORF traffic split by datapath). The property test drives both counters
//! over the same executions of random kernels under random hierarchy
//! shapes and requires identical totals.

use rfh_testkit::prelude::*;

use rfh::alloc::AllocConfig;
use rfh::energy::AccessCounts;
use rfh::isa::{ReadLoc, Width, WriteLoc};
use rfh::sim::exec::{execute, ExecMode, Launch};
use rfh::sim::sink::{InstrEvent, TraceSink};
use rfh::sim::SwCounter;
use rfh::workloads::generator::{random_program, GenConfig};

/// The pre-refactor `SwCounter`, preserved verbatim as the oracle.
#[derive(Debug, Default)]
struct LegacySwCounter {
    counts: AccessCounts,
}

impl TraceSink for LegacySwCounter {
    fn on_instr(&mut self, event: &InstrEvent<'_>) {
        let instr = event.instr;
        let shared = instr.op.unit().is_shared();
        for (slot, src) in instr.srcs.iter().enumerate() {
            if !src.is_reg() {
                continue;
            }
            match instr.read_locs[slot] {
                ReadLoc::Mrf => self.counts.mrf_read += 1,
                ReadLoc::MrfFillOrf(_) => {
                    self.counts.mrf_read += 1;
                    self.counts.orf_write_private += 1;
                }
                ReadLoc::Orf(_) => {
                    if shared {
                        self.counts.orf_read_shared += 1;
                    } else {
                        self.counts.orf_read_private += 1;
                    }
                }
                ReadLoc::Lrf(_) => self.counts.lrf_read += 1,
            }
        }
        if let Some(dst) = instr.dst {
            let w = u64::from(dst.width == Width::W64) + 1;
            match instr.write_loc {
                WriteLoc::Mrf => self.counts.mrf_write += w,
                WriteLoc::Orf { also_mrf, .. } => {
                    if shared {
                        self.counts.orf_write_shared += w;
                    } else {
                        self.counts.orf_write_private += w;
                    }
                    if also_mrf {
                        self.counts.mrf_write += w;
                    }
                }
                WriteLoc::Lrf { also_mrf, .. } => {
                    self.counts.lrf_write += w;
                    if also_mrf {
                        self.counts.mrf_write += w;
                    }
                }
            }
        }
    }
}

fn arb_config() -> impl Strategy<Value = AllocConfig> {
    (1usize..=8, 0u8..3, any::<bool>(), any::<bool>()).prop_map(|(entries, lrf, pr, ro)| {
        let mut cfg = match lrf {
            0 => AllocConfig::two_level(entries),
            1 => AllocConfig::three_level(entries, false),
            _ => AllocConfig::three_level(entries, true),
        };
        cfg.partial_ranges = pr;
        cfg.read_operands = ro;
        cfg
    })
}

fn arb_shape() -> impl Strategy<Value = GenConfig> {
    (2usize..10, 2usize..8, 1i32..6, 4u16..10).prop_map(|(segments, run_len, max_trips, pool)| {
        GenConfig {
            segments,
            run_len,
            max_trips,
            pool,
        }
    })
}

/// Executes `kernel` once with both counters observing the same stream
/// and returns `(plan-driven, legacy)` totals.
fn count_both(
    kernel: &rfh::isa::Kernel,
    launch: &Launch,
    mem: &mut rfh::sim::GlobalMemory,
    mode: ExecMode,
) -> (AccessCounts, AccessCounts) {
    let mut new = SwCounter::default();
    let mut old = LegacySwCounter::default();
    execute(kernel, launch, mem, mode, &mut [&mut new, &mut old]).unwrap();
    (new.counts(), old.counts)
}

prop! {
    #![config(cases = 64)]

    /// Plan-driven counting equals the frozen pre-refactor rules on
    /// arbitrary baseline (all-MRF) kernels.
    fn plan_counts_match_legacy_baseline(seed in 0u64..5000, shape in arb_shape()) {
        let (kernel, launch, mut mem) = random_program(seed, shape);
        let (new, old) = count_both(&kernel, &launch, &mut mem, ExecMode::Baseline);
        prop_assert_eq!(new, old);
    }

    /// Plan-driven counting equals the frozen pre-refactor rules on
    /// allocated kernels under arbitrary hierarchy shapes, where fills,
    /// datapath splits, and W64 double-costing all come into play.
    fn plan_counts_match_legacy_allocated(
        seed in 0u64..5000,
        cfg in arb_config(),
        shape in arb_shape(),
    ) {
        let (mut kernel, launch, mut mem) = random_program(seed, shape);
        rfh::alloc::allocate(&mut kernel, &cfg, &rfh::energy::EnergyModel::paper()).unwrap();
        let (new, old) = count_both(&kernel, &launch, &mut mem, ExecMode::Hierarchy(cfg));
        prop_assert_eq!(new, old);
    }
}

/// The curated paper workloads, both baseline and allocated under the
/// paper's default configuration — a deterministic anchor alongside the
/// random sweep above.
#[test]
fn plan_counts_match_legacy_on_paper_workloads() {
    for w in rfh::workloads::all() {
        let mut mem = w.memory.clone();
        let (new, old) = count_both(&w.kernel, &w.launch, &mut mem, ExecMode::Baseline);
        assert_eq!(new, old, "baseline counts diverged on {}", w.name);

        let cfg = AllocConfig::default();
        let mut kernel = w.kernel.clone();
        rfh::alloc::allocate(&mut kernel, &cfg, &rfh::energy::EnergyModel::paper()).unwrap();
        let mut mem = w.memory.clone();
        let (new, old) = count_both(&kernel, &w.launch, &mut mem, ExecMode::Hierarchy(cfg));
        assert_eq!(new, old, "allocated counts diverged on {}", w.name);
    }
}
