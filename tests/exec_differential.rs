//! Differential conformance: the warp-batched SoA engine against the
//! frozen reference oracle (`rfh::sim::exec::reference`).
//!
//! Every case runs the same kernel, launch, and memory image through both
//! engines and demands identical observable behavior: the [`ExecReport`],
//! the final global-memory image, and the [`AccessCounts`] a [`SwCounter`]
//! accumulates (which pins the per-instruction event stream — the counter
//! folds every event's resolved plan, so a missing, extra, or re-ordered
//! event shows up as a count mismatch). Errors must match exactly too:
//! same variant, same location, same message.
//!
//! Knobs: `RFH_TESTKIT_SEED` replays the generator sweep from a given
//! base seed, `RFH_EXEC_DIFF_CASES` scales the number of generated
//! kernels (default 1000), and `RFH_JOBS` sets the worker count (outcomes
//! fold in case order, so failures are identical at any job count).

use rfh::alloc::{allocate, AllocConfig};
use rfh::energy::{AccessCounts, EnergyModel};
use rfh::isa::Kernel;
use rfh::sim::exec::{execute_with_engine, Engine, ExecError, ExecMode, ExecReport, Launch};
use rfh::sim::machine::MachineConfig;
use rfh::sim::mem::GlobalMemory;
use rfh::sim::SwCounter;
use rfh::workloads::generator::{random_program, GenConfig};
use rfh_testkit::pool::par_map;
use rfh_testkit::prelude::*;

/// Everything one engine run exposes to an observer.
struct Observed {
    report: ExecReport,
    counts: AccessCounts,
    mem: Vec<u32>,
}

fn run(
    engine: Engine,
    kernel: &Kernel,
    launch: &Launch,
    memory: &GlobalMemory,
    mode: ExecMode,
    machine: &MachineConfig,
) -> Result<Observed, ExecError> {
    let mut mem = memory.clone();
    let mut counter = SwCounter::default();
    let report = execute_with_engine(
        kernel,
        launch,
        &mut mem,
        mode,
        machine,
        engine,
        &mut [&mut counter],
    )?;
    Ok(Observed {
        report,
        counts: counter.counts(),
        mem: mem.words().to_vec(),
    })
}

/// Runs `kernel` through both engines and compares every observable.
fn check_agreement(
    label: &str,
    kernel: &Kernel,
    launch: &Launch,
    memory: &GlobalMemory,
    mode: ExecMode,
    machine: &MachineConfig,
) -> Result<(), String> {
    let soa = run(Engine::Soa, kernel, launch, memory, mode, machine);
    let oracle = run(Engine::Reference, kernel, launch, memory, mode, machine);
    match (soa, oracle) {
        (Ok(s), Ok(o)) => {
            if s.report != o.report {
                return Err(format!(
                    "{label}: reports diverge: soa {:?} vs reference {:?}",
                    s.report, o.report
                ));
            }
            if s.counts != o.counts {
                return Err(format!(
                    "{label}: access counts diverge: soa {:?} vs reference {:?}",
                    s.counts, o.counts
                ));
            }
            if s.mem != o.mem {
                let word = s.mem.iter().zip(&o.mem).position(|(a, b)| a != b);
                return Err(format!(
                    "{label}: memory images diverge at word {word:?} (soa {:?} vs reference {:?})",
                    word.map(|i| s.mem[i]),
                    word.map(|i| o.mem[i]),
                ));
            }
            Ok(())
        }
        (Err(a), Err(b)) => {
            if a == b {
                Ok(())
            } else {
                Err(format!(
                    "{label}: errors diverge: soa `{a}` vs reference `{b}`"
                ))
            }
        }
        (Ok(_), Err(e)) => Err(format!("{label}: SoA succeeded but reference failed: {e}")),
        (Err(e), Ok(_)) => Err(format!("{label}: SoA failed but reference succeeded: {e}")),
    }
}

/// Base seed: `RFH_TESTKIT_SEED` if set, else a fixed default.
fn base_seed() -> u64 {
    rfh_testkit::env::u64_knob("RFH_TESTKIT_SEED").unwrap_or(0xD1FF_5EED_CAFE_0001)
}

/// Generator case budget: `RFH_EXEC_DIFF_CASES` if set, else 1000.
fn diff_cases() -> usize {
    rfh_testkit::env::usize_knob("RFH_EXEC_DIFF_CASES").unwrap_or(1000)
}

/// Per-case seed stream: each case's seed is a deterministic function of
/// the base seed alone, so cases parallelize and replay individually.
fn case_seeds(base: u64, n: usize) -> Vec<u64> {
    let mut seeder = SplitMix64::new(base);
    (0..n).map(|_| seeder.next_u64()).collect()
}

/// The full paper workload suite, unallocated and under two hierarchy
/// shapes, at each workload's own launch geometry.
#[test]
fn all_workloads_agree_on_both_engines() {
    let workloads = rfh::workloads::all();
    assert_eq!(workloads.len(), 35, "the paper's full workload suite");
    let machine = MachineConfig::paper();
    let failures: Vec<String> = par_map(&workloads, |w| {
        let mut errs = Vec::new();
        if let Err(e) = check_agreement(
            &format!("{} baseline", w.name),
            &w.kernel,
            &w.launch,
            &w.memory,
            ExecMode::Baseline,
            &machine,
        ) {
            errs.push(e);
        }
        for cfg in [AllocConfig::two_level(3), AllocConfig::three_level(3, true)] {
            let mut kernel = w.kernel.clone();
            allocate(&mut kernel, &cfg, &EnergyModel::paper()).unwrap();
            if let Err(e) = check_agreement(
                &format!("{} {cfg}", w.name),
                &kernel,
                &w.launch,
                &w.memory,
                ExecMode::Hierarchy(cfg),
                &machine,
            ) {
                errs.push(e);
            }
        }
        errs
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// One generated case: a random kernel (arithmetic chains, hammocks,
/// divergent guarded moves, bounded loops) at a randomized launch geometry
/// including partial trailing warps, checked unallocated and allocated.
fn generated_case(seed: u64) -> Result<(), String> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let shape = GenConfig {
        segments: rng.gen_range(2..10),
        run_len: rng.gen_range(2..8),
        max_trips: rng.gen_range(1..6),
        pool: rng.gen_range(4..10),
    };
    let (kernel, _, memory) = random_program(seed, shape);
    // Thread counts straddle warp boundaries so trailing warps run with a
    // partial active mask; multiple CTAs exercise shared-memory reset.
    let tpc = [32usize, 128, 1, 33, 96, 57][rng.gen_range(0..6)];
    let ctas = rng.gen_range(1..3);
    let launch = Launch::new(ctas, tpc);
    // A bounded budget keeps pathological loop nests fast; both engines
    // see the same budget, so budget errors must agree like any other.
    let mut machine = MachineConfig::paper();
    machine.max_warp_instructions = 200_000;

    check_agreement(
        &format!("gen seed {seed:#018x} baseline"),
        &kernel,
        &launch,
        &memory,
        ExecMode::Baseline,
        &machine,
    )?;

    let entries = rng.gen_range(1..=8);
    let mut cfg = match rng.gen_range(0..3) {
        0 => AllocConfig::two_level(entries),
        1 => AllocConfig::three_level(entries, false),
        _ => AllocConfig::three_level(entries, true),
    };
    cfg.partial_ranges = rng.gen();
    cfg.read_operands = rng.gen();
    let mut allocated = kernel.clone();
    allocate(&mut allocated, &cfg, &EnergyModel::paper())
        .map_err(|e| format!("gen seed {seed:#018x}: allocation failed: {e}"))?;
    check_agreement(
        &format!("gen seed {seed:#018x} {cfg}"),
        &allocated,
        &launch,
        &memory,
        ExecMode::Hierarchy(cfg),
        &machine,
    )
}

/// The generator sweep: 1000 seeded kernels (per `RFH_EXEC_DIFF_CASES`),
/// each checked in both execution modes on both engines.
#[test]
fn generated_kernels_agree_on_both_engines() {
    let base = base_seed();
    let seeds = case_seeds(base, diff_cases());
    let outcomes = par_map(&seeds, |&seed| generated_case(seed));
    let failures: Vec<String> = outcomes.into_iter().filter_map(Result::err).collect();
    assert!(
        failures.is_empty(),
        "{} of {} cases diverged (base seed {base:#018x}; replay one case by \
         setting RFH_TESTKIT_SEED and RFH_EXEC_DIFF_CASES=1 after bisecting):\n{}",
        failures.len(),
        diff_cases(),
        failures.join("\n")
    );
}
