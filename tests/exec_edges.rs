//! Pinned executor edge cases.
//!
//! These tests were written against the original per-thread interpreter
//! *before* the warp-batched SoA executor landed, so they freeze the
//! corner semantics the rewrite must preserve:
//!
//! * the exact `ExecError` Display strings and their `RfhError` exit-code
//!   mapping (drivers and `tests/cli.rs` rely on both being stable);
//! * wide-write behavior at the register-file boundary — a 64-bit ORF
//!   write occupies `entry` and `entry + 1`, a 64-bit LRF write drops the
//!   upper word at the LRF (it lands in the MRF only via `also_mrf`), and
//!   a corrupted `entry = 255` wide write resolves to entry 256 instead
//!   of wrapping;
//! * trailing-lane masking at every `threads_per_cta % warp_width`
//!   residue.

use rfh::alloc::AllocConfig;
use rfh::isa::{BlockId, InstrRef, ReadLoc, WriteLoc};
use rfh::sim::exec::{execute, ExecError, ExecMode, Launch};
use rfh::sim::mem::GlobalMemory;
use rfh::sim::sink::NullSink;
use rfh::RfhError;

fn at(block: u32, index: usize) -> InstrRef {
    InstrRef {
        block: BlockId::new(block),
        index,
    }
}

#[test]
fn exec_error_display_strings_are_stable() {
    let cases: Vec<(ExecError, &str)> = vec![
        (
            ExecError::OutOfBounds {
                space: "global",
                addr: 9999,
                at: at(2, 3),
            },
            "out-of-bounds global access at word 9999 (BB2[3])",
        ),
        (
            ExecError::InstructionBudget { warp: 5 },
            "warp 5 exceeded the instruction budget (infinite loop?)",
        ),
        (
            ExecError::Unsupported {
                what: "64-bit destination on `sel r0 r1, r2, p0`".into(),
                at: at(0, 0),
            },
            "unsupported: 64-bit destination on `sel r0 r1, r2, p0` (BB0[0])",
        ),
        (
            ExecError::BadPlacement {
                what: "read of ORF entry 9 of 3 configured".into(),
                at: at(1, 4),
            },
            "bad placement annotation: read of ORF entry 9 of 3 configured (BB1[4])",
        ),
    ];
    for (err, expect) in cases {
        assert_eq!(err.to_string(), expect);
    }
}

#[test]
fn exec_errors_map_to_exit_code_6() {
    let errs = [
        ExecError::OutOfBounds {
            space: "shared",
            addr: 1,
            at: at(0, 0),
        },
        ExecError::InstructionBudget { warp: 0 },
        ExecError::Unsupported {
            what: "x".into(),
            at: at(0, 0),
        },
        ExecError::BadPlacement {
            what: "y".into(),
            at: at(0, 0),
        },
    ];
    for err in errs {
        let wrapped = RfhError::from(err.clone());
        assert_eq!(wrapped.exit_code(), 6, "{wrapped}");
        // Display passes straight through to the inner error.
        assert_eq!(wrapped.to_string(), err.to_string());
        // And the inner error stays reachable for error-chain consumers.
        assert!(std::error::Error::source(&wrapped).is_some());
    }
}

/// A 64-bit ORF write occupies `entry` and `entry + 1`: reading both
/// entries back must observe the low and high loaded words.
#[test]
fn wide_orf_write_occupies_entry_and_entry_plus_one() {
    let mut kernel = rfh::isa::parse_kernel(
        "
.kernel w
BB0:
  mov r0, %tid.x
  shl r1 r0, 1
  ld.global r4.w64 r1
  iadd r6 r4, r5
  st.global r0, r6
  exit
",
    )
    .unwrap();
    kernel.instr_mut(at(0, 2)).write_loc = WriteLoc::Orf {
        entry: 0,
        also_mrf: false,
    };
    kernel.instr_mut(at(0, 3)).read_locs = vec![ReadLoc::Orf(0), ReadLoc::Orf(1)];
    let cfg = AllocConfig::two_level(3);
    let mut mem = GlobalMemory::new(8);
    for (a, v) in [(0u32, 3u32), (1, 4), (2, 30), (3, 40)] {
        mem.store(a, v);
    }
    let mut sink = NullSink;
    execute(
        &kernel,
        &Launch::new(1, 2),
        &mut mem,
        ExecMode::Hierarchy(cfg),
        &mut [&mut sink],
    )
    .unwrap();
    assert_eq!(mem.load(0), Some(7), "lane 0: ORF0 + ORF1 = 3 + 4");
    assert_eq!(mem.load(1), Some(70), "lane 1: ORF0 + ORF1 = 30 + 40");
}

/// A 64-bit LRF write keeps only the low word at the LRF: the upper word
/// is dropped at the register-file boundary (the LRF holds last results,
/// not pairs), so the high register keeps its prior MRF value.
#[test]
fn wide_lrf_write_drops_upper_word_at_the_lrf() {
    let mut kernel = rfh::isa::parse_kernel(
        "
.kernel l
BB0:
  mov r5, 77
  mov r0, %tid.x
  shl r1 r0, 1
  ld.global r4.w64 r1
  iadd r6 r4, r5
  st.global r0, r6
  exit
",
    )
    .unwrap();
    kernel.instr_mut(at(0, 3)).write_loc = WriteLoc::Lrf {
        bank: None,
        also_mrf: false,
    };
    kernel.instr_mut(at(0, 4)).read_locs = vec![ReadLoc::Lrf(None), ReadLoc::Mrf];
    let cfg = AllocConfig::three_level(3, false);
    let mut mem = GlobalMemory::new(8);
    for (a, v) in [(0u32, 3u32), (1, 4), (2, 30), (3, 40)] {
        mem.store(a, v);
    }
    let mut sink = NullSink;
    execute(
        &kernel,
        &Launch::new(1, 2),
        &mut mem,
        ExecMode::Hierarchy(cfg),
        &mut [&mut sink],
    )
    .unwrap();
    // r6 = LRF(lo) + r5; r5 still holds 77 because the wide load's upper
    // word never reached the MRF (no also_mrf) and was dropped at the LRF.
    assert_eq!(mem.load(0), Some(3 + 77), "lane 0");
    assert_eq!(mem.load(1), Some(30 + 77), "lane 1");
}

/// With `also_mrf`, both words of a wide LRF write land in the MRF even
/// though the LRF itself keeps only the low word.
#[test]
fn wide_lrf_write_with_also_mrf_writes_both_words_to_mrf() {
    let mut kernel = rfh::isa::parse_kernel(
        "
.kernel lm
BB0:
  mov r0, %tid.x
  shl r1 r0, 1
  ld.global r4.w64 r1
  iadd r6 r4, r5
  st.global r0, r6
  exit
",
    )
    .unwrap();
    kernel.instr_mut(at(0, 2)).write_loc = WriteLoc::Lrf {
        bank: None,
        also_mrf: true,
    };
    let cfg = AllocConfig::three_level(3, false);
    let mut mem = GlobalMemory::new(8);
    for (a, v) in [(0u32, 3u32), (1, 4), (2, 30), (3, 40)] {
        mem.store(a, v);
    }
    let mut sink = NullSink;
    execute(
        &kernel,
        &Launch::new(1, 2),
        &mut mem,
        ExecMode::Hierarchy(cfg),
        &mut [&mut sink],
    )
    .unwrap();
    assert_eq!(mem.load(0), Some(7), "lane 0: MRF r4 + r5 = 3 + 4");
    assert_eq!(mem.load(1), Some(70), "lane 1: MRF r4 + r5 = 30 + 40");
}

/// A corrupted `entry = 255` annotation on a wide write resolves its high
/// word to ORF entry 256 (no u8 wraparound) and is rejected up front.
#[test]
fn wide_orf_write_at_entry_255_does_not_wrap() {
    let mut kernel = rfh::isa::parse_kernel(
        "
.kernel nw
BB0:
  mov r0, %tid.x
  ld.global r4.w64 r0
  st.global r0, r4
  exit
",
    )
    .unwrap();
    kernel.instr_mut(at(0, 1)).write_loc = WriteLoc::Orf {
        entry: 255,
        also_mrf: false,
    };
    let cfg = AllocConfig::two_level(3);
    let mut mem = GlobalMemory::new(8);
    let mut sink = NullSink;
    let err = execute(
        &kernel,
        &Launch::new(1, 1),
        &mut mem,
        ExecMode::Hierarchy(cfg),
        &mut [&mut sink],
    )
    .unwrap_err();
    assert!(matches!(err, ExecError::BadPlacement { .. }), "{err}");
    let msg = err.to_string();
    assert!(
        msg.contains("ORF entry 255") || msg.contains("ORF entry 256"),
        "the wide write must resolve past the configured ORF without \
         wrapping to entry 0: {msg}"
    );
}

/// Every `threads_per_cta % warp_width` residue masks exactly the
/// trailing lanes of the last warp: threads beyond the launch never
/// execute, and the reported instruction counts match the population.
#[test]
fn trailing_lane_masks_cover_every_residue() {
    let kernel =
        rfh::isa::parse_kernel(".kernel pw\nBB0:\n  mov r0, %tid.x\n  st.global r0, 1\n  exit\n")
            .unwrap();
    for residue in 0..32usize {
        let threads = if residue == 0 { 64 } else { 64 + residue };
        assert_eq!(threads % 32, residue);
        let mut mem = GlobalMemory::new(128);
        let mut sink = NullSink;
        let report = execute(
            &kernel,
            &Launch::new(1, threads),
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap();
        for t in 0..threads as u32 {
            assert_eq!(mem.load(t), Some(1), "residue {residue}: lane {t}");
        }
        for t in threads as u32..128 {
            assert_eq!(
                mem.load(t),
                Some(0),
                "residue {residue}: lane {t} must not execute"
            );
        }
        let warps = threads.div_ceil(32);
        assert_eq!(report.warps, warps, "residue {residue}");
        assert_eq!(
            report.warp_instructions,
            3 * warps as u64,
            "residue {residue}"
        );
        assert_eq!(
            report.thread_instructions,
            3 * threads as u64,
            "residue {residue}"
        );
    }
}
