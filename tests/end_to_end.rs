//! Cross-crate integration tests: compile → allocate → validate → execute
//! → verify, across every workload and a matrix of hierarchy shapes.

use rfh::alloc::{allocate, validate_placements, AllocConfig};
use rfh::energy::EnergyModel;
use rfh::sim::exec::ExecMode;
use rfh::sim::sink::NullSink;
use rfh::sim::SwCounter;

fn configs() -> Vec<AllocConfig> {
    let mut v = vec![AllocConfig::baseline()];
    for entries in [1, 2, 3, 5, 8] {
        v.push(AllocConfig::two_level_plain(entries));
        v.push(AllocConfig::two_level(entries));
        v.push(AllocConfig::three_level(entries, false));
        v.push(AllocConfig::three_level(entries, true));
    }
    v
}

#[test]
fn every_workload_runs_correctly_under_every_config() {
    let model = EnergyModel::paper();
    for w in rfh::workloads::all() {
        for cfg in configs() {
            let mut kernel = w.kernel.clone();
            allocate(&mut kernel, &cfg, &model).unwrap();
            validate_placements(&kernel, &cfg)
                .unwrap_or_else(|e| panic!("{} under {cfg}: {e}", w.name));
            let mode = if cfg.is_baseline() {
                ExecMode::Baseline
            } else {
                ExecMode::Hierarchy(cfg)
            };
            let mut sink = NullSink;
            w.run_and_verify(mode, &kernel, &mut [&mut sink])
                .unwrap_or_else(|e| panic!("{e} under {cfg}"));
        }
    }
}

#[test]
fn allocation_strictly_reduces_energy_on_every_workload() {
    let model = EnergyModel::paper();
    let cfg = AllocConfig::three_level(3, true);
    for w in rfh::workloads::all() {
        let mut base_counter = SwCounter::default();
        let mut sink: &mut dyn rfh::sim::TraceSink = &mut base_counter;
        w.run_and_verify(
            ExecMode::Baseline,
            &w.kernel,
            std::slice::from_mut(&mut sink),
        )
        .unwrap();
        let base = base_counter.counts();

        let mut kernel = w.kernel.clone();
        allocate(&mut kernel, &cfg, &model).unwrap();
        let mut counter = SwCounter::default();
        let mut sink2: &mut dyn rfh::sim::TraceSink = &mut counter;
        w.run_and_verify(
            ExecMode::Hierarchy(cfg),
            &kernel,
            std::slice::from_mut(&mut sink2),
        )
        .unwrap();
        let counts = counter.counts();

        let baseline = model
            .baseline_energy(base.total_reads(), base.total_writes())
            .total();
        let allocated = model.energy(&counts, 3).total();
        assert!(
            allocated < baseline,
            "{}: {allocated:.1} pJ !< baseline {baseline:.1} pJ",
            w.name
        );
        // Read traffic is conserved; write traffic only grows by dual
        // writes and fills.
        assert_eq!(counts.total_reads(), base.total_reads(), "{}", w.name);
        assert!(counts.mrf_write <= base.total_writes(), "{}", w.name);
    }
}

#[test]
fn more_orf_entries_never_reduce_upper_level_reads() {
    // Occupancy is the only constraint that relaxes with size when the
    // access-energy model is held fixed; verify monotone capture using the
    // 3-entry energy row for all sizes.
    let mut model = EnergyModel::paper();
    let row3 = model.orf_table[2];
    for row in model.orf_table.iter_mut() {
        row.read_pj = row3.read_pj;
        row.write_pj = row3.write_pj;
    }
    for name in ["matrixmul", "mandelbrot", "cp"] {
        let w = rfh::workloads::by_name(name).unwrap();
        let mut prev = 0u64;
        for entries in 1..=8 {
            let mut kernel = w.kernel.clone();
            let cfg = AllocConfig::two_level(entries);
            allocate(&mut kernel, &cfg, &model).unwrap();
            let mut counter = SwCounter::default();
            let mut sink: &mut dyn rfh::sim::TraceSink = &mut counter;
            w.run_and_verify(
                ExecMode::Hierarchy(cfg),
                &kernel,
                std::slice::from_mut(&mut sink),
            )
            .unwrap();
            let upper = counter.counts().orf_read_private + counter.counts().orf_read_shared;
            assert!(
                upper + 5 >= prev,
                "{name}: capture dropped {prev} -> {upper} at {entries} entries"
            );
            prev = upper;
        }
    }
}

#[test]
fn strand_markings_survive_round_trip_through_text() {
    for w in rfh::workloads::all() {
        let mut kernel = w.kernel.clone();
        rfh::analysis::strand::mark_strands(&mut kernel);
        let text = rfh::isa::printer::print_kernel(&kernel);
        let parsed = rfh::isa::parse_kernel(&text).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(parsed, kernel, "{}", w.name);
    }
}

#[test]
fn allocator_scales_to_large_kernels() {
    // A generated kernel an order of magnitude larger than any workload:
    // allocation (including validation) must stay well under a second.
    use rfh::workloads::generator::{random_program, GenConfig};
    let shape = GenConfig {
        segments: 120,
        run_len: 10,
        max_trips: 3,
        pool: 10,
    };
    let (kernel, _, _) = random_program(99, shape);
    assert!(kernel.instr_count() > 800, "got {}", kernel.instr_count());
    let start = std::time::Instant::now();
    let mut k = kernel.clone();
    let stats = allocate(
        &mut k,
        &AllocConfig::three_level(3, true),
        &EnergyModel::paper(),
    )
    .unwrap();
    let elapsed = start.elapsed();
    assert!(stats.orf_values + stats.lrf_values > 50);
    assert!(
        elapsed.as_millis() < 2000,
        "allocation took {elapsed:?} for {} instructions",
        kernel.instr_count()
    );
}
