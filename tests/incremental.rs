//! Differential suite for incremental allocation: the strand-cached pass
//! must be **byte-identical** to the monolithic pass — over every ported
//! workload and over generated kernels with seeded single-strand edits —
//! and must recompute *only* the edited strand (strand-cache stats as the
//! oracle).

use std::cell::RefCell;
use std::collections::HashMap;

use rfh::alloc::{
    allocate, allocate_incremental, AllocConfig, AllocStats, IncrementalStats, StrandAllocation,
};
use rfh::energy::EnergyModel;
use rfh::isa::printer::print_kernel_annotated;
use rfh::isa::{Kernel, Operand};
use rfh::workloads::generator::{random_program, GenConfig};

/// A strand-allocation memo shared across incremental runs, playing the
/// role of the daemon's strand cache.
type Cache = RefCell<HashMap<String, StrandAllocation>>;

fn incremental(
    kernel: &mut Kernel,
    cfg: &AllocConfig,
    model: &EnergyModel,
    cache: &Cache,
) -> (AllocStats, IncrementalStats) {
    let mut lookup = |fp: &str| cache.borrow().get(fp).cloned();
    let mut publish = |fp: &str, sa: &StrandAllocation| {
        cache.borrow_mut().insert(fp.to_string(), sa.clone());
    };
    allocate_incremental(kernel, cfg, model, &mut lookup, &mut publish)
        .expect("incremental allocate")
}

fn configs() -> Vec<AllocConfig> {
    let mut v = vec![
        AllocConfig::two_level(4),
        AllocConfig::three_level(3, false),
        AllocConfig::three_level(3, true),
    ];
    let mut rich = AllocConfig::three_level(3, true);
    rich.partial_ranges = true;
    rich.read_operands = true;
    v.push(rich);
    v
}

#[test]
fn every_workload_allocates_identically_incremental_vs_monolithic() {
    let model = EnergyModel::paper();
    let workloads = rfh::workloads::all();
    assert!(workloads.len() >= 15, "suite shrank: {}", workloads.len());
    for w in &workloads {
        for cfg in configs() {
            let mut mono = w.kernel.clone();
            let mono_stats = allocate(&mut mono, &cfg, &model)
                .unwrap_or_else(|e| panic!("{}: monolithic: {e}", w.name));
            let mono_text = print_kernel_annotated(&mono);

            // Cold incremental: every strand computed, result identical.
            let cache = Cache::default();
            let mut cold = w.kernel.clone();
            let (cold_stats, inc) = incremental(&mut cold, &cfg, &model, &cache);
            assert_eq!(
                mono_text,
                print_kernel_annotated(&cold),
                "{}: cold incremental diverges",
                w.name
            );
            assert_eq!(mono_stats, cold_stats, "{}: cold stats diverge", w.name);
            assert_eq!(inc.hits + inc.misses, inc.strands, "{}", w.name);

            // Warm incremental: every strand spliced, result identical.
            let mut warm = w.kernel.clone();
            let (warm_stats, winc) = incremental(&mut warm, &cfg, &model, &cache);
            assert_eq!(winc.misses, 0, "{}: warm run recomputed a strand", w.name);
            assert_eq!(winc.hits, winc.strands, "{}: warm run missed", w.name);
            assert_eq!(
                mono_text,
                print_kernel_annotated(&warm),
                "{}: warm incremental diverges",
                w.name
            );
            assert_eq!(mono_stats, warm_stats, "{}: warm stats diverge", w.name);
        }
    }
}

/// Every `(block, instr, src-slot)` holding an integer immediate. Editing
/// one of these changes a single strand's text without touching control
/// flow, def/use structure, or strand boundaries.
fn imm_sites(kernel: &Kernel) -> Vec<(usize, usize, usize)> {
    let mut sites = Vec::new();
    for (b, block) in kernel.blocks.iter().enumerate() {
        for (i, instr) in block.instrs.iter().enumerate() {
            for (s, src) in instr.srcs.iter().enumerate() {
                if matches!(src, Operand::Imm(_)) {
                    sites.push((b, i, s));
                }
            }
        }
    }
    sites
}

fn edit_one_imm(kernel: &mut Kernel, seed: u64) {
    let sites = imm_sites(kernel);
    assert!(!sites.is_empty(), "generated kernel has no immediates");
    let (b, i, s) = sites[seed as usize % sites.len()];
    let Operand::Imm(v) = kernel.blocks[b].instrs[i].srcs[s] else {
        unreachable!("site points at an immediate");
    };
    kernel.blocks[b].instrs[i].srcs[s] = Operand::Imm(v.wrapping_add(1));
}

/// 512 seeded single-operand edits: after warming the strand cache on the
/// original kernel, re-allocating the edited kernel recomputes at most one
/// strand (exactly the edited one — or zero recomputes when the edit makes
/// the strand identical to another already-cached strand), splices every
/// other strand from cache, and is byte-identical to a from-scratch
/// monolithic pass over the edited kernel.
#[test]
fn single_strand_edit_recomputes_only_that_strand() {
    let model = EnergyModel::paper();
    let cfgs = configs();
    for seed in 0u64..512 {
        let shape = GenConfig {
            segments: 3 + (seed % 5) as usize,
            run_len: 3 + (seed % 4) as usize,
            max_trips: 1 + (seed % 5) as i32,
            pool: 6 + (seed % 4) as u16,
        };
        let (kernel, _launch, _mem) = random_program(seed, shape);
        let cfg = &cfgs[seed as usize % cfgs.len()];

        // Warm the cache on the original kernel.
        let cache = Cache::default();
        let mut orig = kernel.clone();
        let (_, inc0) = incremental(&mut orig, cfg, &model, &cache);
        assert_eq!(inc0.hits + inc0.misses, inc0.strands, "seed {seed}");

        // Edit exactly one immediate operand (one strand's text).
        let mut edited = kernel.clone();
        edit_one_imm(&mut edited, seed);

        let mut mono = edited.clone();
        let mono_stats = allocate(&mut mono, cfg, &model)
            .unwrap_or_else(|e| panic!("seed {seed}: monolithic: {e}"));

        let mut inc_kernel = edited.clone();
        let (inc_stats, inc) = incremental(&mut inc_kernel, cfg, &model, &cache);
        assert!(
            inc.misses <= 1,
            "seed {seed}: one edited strand, {} recomputed",
            inc.misses
        );
        assert_eq!(
            inc.hits,
            inc.strands - inc.misses,
            "seed {seed}: unchanged strands must splice from the cache"
        );
        assert_eq!(
            print_kernel_annotated(&mono),
            print_kernel_annotated(&inc_kernel),
            "seed {seed}: incremental diverges from monolithic after edit"
        );
        assert_eq!(mono_stats, inc_stats, "seed {seed}: stats diverge");
    }
}
