//! Differential conformance: the staged timing engine against the frozen
//! reference oracle (`rfh::sim::timing::reference`).
//!
//! Every case replays the same trace set through both engines and demands
//! exact agreement on the full `Result`: identical [`TimingResult`]s
//! (cycles, instructions, deschedules) on success, and field-for-field
//! identical [`TimingError`]s on failure — including the deadlock
//! snapshot, so a divergence in *how* the engines fail is caught as
//! loudly as a divergence in what they compute.
//!
//! Two sources of cases:
//!
//! * the full 35-workload paper suite, traced once per workload and
//!   replayed under a grid of scheduler configurations (single- and
//!   two-level, both policies, a tight cycle budget for error parity);
//! * a seeded generator of synthetic trace sets — random latency
//!   classes, units, long flags, register pressure, empty warps, and
//!   balanced *and deliberately unbalanced* barriers (the latter must
//!   deadlock identically).
//!
//! Knobs: `RFH_TESTKIT_SEED` replays the generator sweep from a given
//! base seed, `RFH_TIMING_DIFF_CASES` scales the generated case count
//! (default 600), and `RFH_JOBS` sets the worker count (outcomes fold in
//! case order, so failures are identical at any job count).

use rfh::sim::exec::{execute_with, ExecMode};
use rfh::sim::machine::MachineConfig;
use rfh::sim::timing::{
    simulate_multi_sm, simulate_timing_with_engine, Engine, MultiSmConfig, SchedPolicy,
    TimingConfig, TraceCapture, TraceOp,
};
use rfh_testkit::pool::par_map;
use rfh_testkit::prelude::*;

/// Runs one trace set through both engines under one config and compares
/// the full `Result`.
fn check_agreement(
    label: &str,
    traces: &[Vec<TraceOp>],
    cta_of: &dyn Fn(usize) -> usize,
    config: &TimingConfig,
) -> Result<(), String> {
    let staged = simulate_timing_with_engine(traces, cta_of, config, Engine::Staged);
    let reference = simulate_timing_with_engine(traces, cta_of, config, Engine::Reference);
    match (&staged, &reference) {
        _ if staged == reference => Ok(()),
        (Ok(s), Ok(r)) => Err(format!(
            "{label}: results diverge: staged {s:?} vs reference {r:?}"
        )),
        (Err(s), Err(r)) => Err(format!(
            "{label}: errors diverge: staged `{s}` vs reference `{r}`"
        )),
        (Ok(s), Err(r)) => Err(format!(
            "{label}: staged succeeded ({s:?}) but reference failed: {r}"
        )),
        (Err(s), Ok(r)) => Err(format!(
            "{label}: staged failed ({s}) but reference succeeded ({r:?})"
        )),
    }
}

/// The scheduler configuration grid every captured workload replays
/// under: both levels, the active-set sweep of fig 9, both policies, and
/// a tight budget that must trip identically.
fn config_grid() -> Vec<(String, TimingConfig)> {
    let mut grid: Vec<(String, TimingConfig)> = Vec::new();
    grid.push(("single-level".into(), TimingConfig::single_level()));
    grid.push((
        "single-level greedy".into(),
        TimingConfig::single_level().with_policy(SchedPolicy::Greedy),
    ));
    for active in [1, 2, 4, 8, 16, 32] {
        grid.push((
            format!("two-level({active})"),
            TimingConfig::two_level(active),
        ));
    }
    for active in [4, 8] {
        grid.push((
            format!("two-level({active}) greedy"),
            TimingConfig::two_level(active).with_policy(SchedPolicy::Greedy),
        ));
    }
    grid.push((
        "two-level(8) budget=1000".into(),
        TimingConfig::two_level(8).with_max_cycles(1000),
    ));
    grid
}

/// The full paper workload suite: trace once, replay under the grid.
#[test]
fn all_workloads_agree_on_both_engines() {
    let workloads = rfh::workloads::all();
    assert_eq!(workloads.len(), 35, "the paper's full workload suite");
    let machine = MachineConfig::paper();
    let grid = config_grid();
    let failures: Vec<String> = par_map(&workloads, |w| {
        let mut cap = TraceCapture::new(machine.clone(), w.launch.threads_per_cta);
        let mut mem = w.memory.clone();
        if let Err(e) = execute_with(
            &w.kernel,
            &w.launch,
            &mut mem,
            ExecMode::Baseline,
            &machine,
            &mut [&mut cap],
        ) {
            return vec![format!("{}: trace capture failed: {e}", w.name)];
        }
        grid.iter()
            .filter_map(|(cfg_name, cfg)| {
                check_agreement(
                    &format!("{} {cfg_name}", w.name),
                    &cap.traces,
                    &|wi| cap.cta_of(wi),
                    cfg,
                )
                .err()
            })
            .collect()
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// Base seed: `RFH_TESTKIT_SEED` if set, else a fixed default.
fn base_seed() -> u64 {
    rfh_testkit::env::u64_knob("RFH_TESTKIT_SEED").unwrap_or(0x71A1_5EED_CAFE_0010)
}

/// Generator case budget: `RFH_TIMING_DIFF_CASES` if set, else 600.
fn diff_cases() -> usize {
    rfh_testkit::env::usize_knob("RFH_TIMING_DIFF_CASES").unwrap_or(600)
}

/// Per-case seed stream: each case's seed is a deterministic function of
/// the base seed alone, so cases parallelize and replay individually.
fn case_seeds(base: u64, n: usize) -> Vec<u64> {
    let mut seeder = SplitMix64::new(base);
    (0..n).map(|_| seeder.next_u64()).collect()
}

/// One random dynamic instruction: latency class, unit, long flag, and
/// register operands are all drawn independently (the engines must agree
/// on *any* trace, not just ones a real capture would produce).
fn random_op(rng: &mut SmallRng) -> TraceOp {
    use rfh::isa::Unit;
    let (unit, latency, long) = match rng.gen_range(0..100u32) {
        0..=59 => (Unit::Alu, 8, false),
        60..=69 => (Unit::Sfu, 20, false),
        70..=79 => (Unit::Mem, 20, false), // shared memory
        80..=89 => (Unit::Mem, 400, true), // DRAM
        90..=94 => (Unit::Tex, 400, true), // texture
        _ => {
            // An odd one: arbitrary latency, any unit, random long flag.
            let unit = [Unit::Alu, Unit::Sfu, Unit::Mem, Unit::Tex][rng.gen_range(0..4)];
            (unit, rng.gen_range(1..=500), rng.gen_range(0..10u32) < 3)
        }
    };
    let mut dsts = [None, None];
    for d in dsts.iter_mut().take(rng.gen_range(0..=2)) {
        *d = Some(rng.gen_range(0..24u16));
    }
    let mut srcs = [None, None, None];
    for s in srcs.iter_mut().take(rng.gen_range(0..=3)) {
        *s = Some(rng.gen_range(0..24u16));
    }
    TraceOp {
        latency,
        unit,
        long,
        barrier: false,
        dsts,
        srcs,
    }
}

fn barrier_op() -> TraceOp {
    TraceOp {
        latency: 1,
        unit: rfh::isa::Unit::Alu,
        long: false,
        barrier: true,
        dsts: [None, None],
        srcs: [None, None, None],
    }
}

/// One generated trace set: 1–3 CTAs of 1–4 warps, segmented by barriers
/// that are balanced within each CTA ~90% of the time — the unbalanced
/// rest must produce identical deadlock errors from both engines.
fn generated_case(seed: u64) -> Result<(), String> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let ctas = rng.gen_range(1..=3usize);
    let warps_per_cta = rng.gen_range(1..=4usize);
    let segments = rng.gen_range(0..=3usize);
    let balanced = rng.gen_range(0..10u32) < 9;

    let n = ctas * warps_per_cta;
    let mut traces: Vec<Vec<TraceOp>> = Vec::with_capacity(n);
    for wi in 0..n {
        let mut trace = Vec::new();
        let mut barriers = segments;
        if !balanced && wi == 0 {
            // Warp 0 runs one barrier short (or long): a CTA-level
            // mismatch both engines must diagnose identically.
            barriers = if segments > 0 && rng.gen::<bool>() {
                segments - 1
            } else {
                segments + 1
            };
        }
        for seg in 0..=barriers {
            for _ in 0..rng.gen_range(0..=8) {
                trace.push(random_op(&mut rng));
            }
            if seg < barriers {
                trace.push(barrier_op());
            }
        }
        if rng.gen_range(0..100u32) < 5 {
            trace.clear(); // the empty-warp edge case
        }
        traces.push(trace);
    }
    let cta_of = move |w: usize| w / warps_per_cta;

    let mut config = if rng.gen_range(0..10u32) < 7 {
        TimingConfig::two_level(rng.gen_range(1..=32))
    } else {
        TimingConfig::single_level()
    };
    if rng.gen_range(0..10u32) < 3 {
        config = config.with_policy(SchedPolicy::Greedy);
    }
    if rng.gen_range(0..10u32) < 1 {
        config = config.with_max_cycles(rng.gen_range(50..=2000));
    }

    check_agreement(&format!("gen seed {seed:#018x}"), &traces, &cta_of, &config)?;

    // The same case distributed across SMs: per-SM engine runs must also
    // agree (results and errors) on every SM slice.
    let sms = rng.gen_range(1..=3usize);
    let staged = simulate_multi_sm(
        &traces,
        &cta_of,
        &MultiSmConfig::new(sms, config.clone()).with_engine(Engine::Staged),
    );
    let reference = simulate_multi_sm(
        &traces,
        &cta_of,
        &MultiSmConfig::new(sms, config).with_engine(Engine::Reference),
    );
    if staged != reference {
        return Err(format!(
            "gen seed {seed:#018x}: multi-SM ({sms}) diverges: staged {staged:?} vs reference {reference:?}"
        ));
    }
    Ok(())
}

/// The generator sweep: 600 seeded trace sets (per
/// `RFH_TIMING_DIFF_CASES`), each replayed on both engines single-SM and
/// multi-SM.
#[test]
fn generated_traces_agree_on_both_engines() {
    let base = base_seed();
    let seeds = case_seeds(base, diff_cases());
    let outcomes = par_map(&seeds, |&seed| generated_case(seed));
    let failures: Vec<String> = outcomes.into_iter().filter_map(Result::err).collect();
    assert!(
        failures.is_empty(),
        "{} of {} cases diverged (base seed {base:#018x}; replay one case by \
         setting RFH_TESTKIT_SEED and RFH_TIMING_DIFF_CASES=1 after bisecting):\n{}",
        failures.len(),
        diff_cases(),
        failures.join("\n")
    );
}
