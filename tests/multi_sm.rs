//! Multi-SM determinism, pinned at the CLI boundary.
//!
//! `rfhc timing --sms N` distributes CTAs across N SM contexts that
//! simulate in parallel over the worker pool; these tests pin the two
//! determinism contracts from the scaling work:
//!
//! * the stdout of a multi-SM run is **byte-identical** under
//!   `RFH_JOBS=1` and `RFH_JOBS=8` (results fold in SM order, never in
//!   completion order);
//! * `--sms 1` is byte-identical to the single-SM library path
//!   ([`rfh::sim::timing::simulate_timing`]) — the CTA distribution and
//!   the memory-contention uplift are both identities at one SM.
//!
//! Config-validation failures must also surface through the binary with
//! the timing exit code, so scripted sweeps can tell a bad flag from a
//! bad kernel.

use std::process::{Command, Output};

use rfh::sim::exec::{execute_with, ExecMode};
use rfh::sim::timing::{simulate_timing, TimingConfig, TraceCapture};
use rfh::sim::MachineConfig;

fn rfhc_with_jobs(args: &[&str], jobs: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rfhc"))
        .args(args)
        .env("RFH_JOBS", jobs)
        .output()
        .expect("spawn rfhc")
}

#[test]
fn multi_sm_stdout_is_byte_identical_across_job_counts() {
    for sms in ["1", "2", "4", "8"] {
        let args = ["timing", "--workload", "vectoradd", "--sms", sms];
        let serial = rfhc_with_jobs(&args, "1");
        let parallel = rfhc_with_jobs(&args, "8");
        assert_eq!(serial.status.code(), Some(0), "sms={sms}");
        assert_eq!(parallel.status.code(), Some(0), "sms={sms}");
        assert_eq!(
            serial.stdout, parallel.stdout,
            "sms={sms}: stdout diverges between RFH_JOBS=1 and RFH_JOBS=8"
        );
        assert!(!serial.stdout.is_empty(), "sms={sms}");
    }
}

#[test]
fn sms_one_is_byte_identical_to_the_single_sm_path() {
    // Reproduce the single-SM library result for the same workload and
    // render it exactly as the CLI does: at one SM the distribution and
    // the contention uplift are identities, so the bytes must match.
    let w = rfh::workloads::by_name("vectoradd").expect("known workload");
    let machine = MachineConfig::paper();
    let mut cap = TraceCapture::new(machine.clone(), w.launch.threads_per_cta);
    let mut mem = w.memory.clone();
    execute_with(
        &w.kernel,
        &w.launch,
        &mut mem,
        ExecMode::Baseline,
        &machine,
        &mut [&mut cap],
    )
    .expect("trace capture");
    let r = simulate_timing(
        &cap.traces,
        &|wi| cap.cta_of(wi),
        &TimingConfig::two_level(8),
    )
    .expect("single-SM simulation");

    let expected = format!(
        "sm 0: ctas {} warps {} cycles {} instructions {} deschedules {} ipc {:.4}\n\
         total: sms 1 cycles {} instructions {} deschedules {} ipc {:.4}\n",
        w.launch.ctas,
        cap.traces.len(),
        r.cycles,
        r.instructions,
        r.deschedules,
        r.ipc(),
        r.cycles,
        r.instructions,
        r.deschedules,
        r.ipc(),
    );

    let out = rfhc_with_jobs(&["timing", "--workload", "vectoradd", "--sms", "1"], "4");
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        expected,
        "`rfhc timing --sms 1` diverges from the single-SM library path"
    );
}

#[test]
fn both_cli_engines_produce_identical_output() {
    let staged = rfhc_with_jobs(
        &[
            "timing",
            "--workload",
            "reduction",
            "--sms",
            "2",
            "--engine",
            "staged",
        ],
        "4",
    );
    let reference = rfhc_with_jobs(
        &[
            "timing",
            "--workload",
            "reduction",
            "--sms",
            "2",
            "--engine",
            "reference",
        ],
        "4",
    );
    assert_eq!(staged.status.code(), Some(0));
    assert_eq!(reference.status.code(), Some(0));
    assert_eq!(staged.stdout, reference.stdout);
}

#[test]
fn invalid_timing_configs_exit_with_the_timing_code() {
    // active == 0 trips up-front config validation (exit 7, the timing
    // error class), not a panic and not silent degenerate scheduling.
    let out = rfhc_with_jobs(&["timing", "--workload", "vectoradd", "--active", "0"], "1");
    assert_eq!(out.status.code(), Some(7));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("active"), "stderr: {err}");

    // An oversized active set is the other half of the same contract.
    let out = rfhc_with_jobs(
        &["timing", "--workload", "vectoradd", "--active", "999"],
        "1",
    );
    assert_eq!(out.status.code(), Some(7));
}

#[test]
fn timing_usage_errors_exit_with_the_usage_code() {
    let out = rfhc_with_jobs(&["timing"], "1");
    assert_eq!(out.status.code(), Some(2));
    let out = rfhc_with_jobs(&["timing", "--sms", "0", "--workload", "vectoradd"], "1");
    assert_eq!(out.status.code(), Some(2));
    let out = rfhc_with_jobs(&["timing", "--workload", "no-such-workload"], "1");
    assert_eq!(out.status.code(), Some(2));
    let out = rfhc_with_jobs(
        &["timing", "--workload", "vectoradd", "--engine", "warp9"],
        "1",
    );
    assert_eq!(out.status.code(), Some(2));
}
